package core

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// relocatingSkipModel reproduces the shape of a misdirected write: the hook
// moves the live handle (persisting data elsewhere would do the same) and
// then tells the injector to skip the intercepted write. The injector must
// restore the sequential offset to the absolute post-write position — a
// relative seek would advance from wherever the hook parked the handle.
// The model is used directly, never registered: it exists only to pin the
// Skip-path seek contract.
type relocatingSkipModel struct {
	BaseModel
	parkAt int64
}

func (relocatingSkipModel) Name() string           { return "relocating-skip" }
func (relocatingSkipModel) Short() string          { return "RS" }
func (relocatingSkipModel) Hosts() []vfs.Primitive { return []vfs.Primitive{vfs.PrimWrite} }
func (relocatingSkipModel) Describe() string       { return "moves the handle, then skips the write" }

func (m relocatingSkipModel) MutateWrite(env Env, op WriteOp) WriteAction {
	if _, err := op.File.Seek(m.parkAt, io.SeekStart); err != nil {
		panic(err)
	}
	env.Record(Mutation{Model: m, Path: op.Path, Offset: op.Off, Length: len(op.Buf)})
	return WriteAction{Skip: true}
}

func TestWriteSkipSeeksAbsolutePostWriteOffset(t *testing.T) {
	base := vfs.NewMemFS()
	sig := Config{Model: relocatingSkipModel{parkAt: 100}}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(1)) // claim the first write
	fs := inj.Wrap(base)

	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("AAAA")); err != nil { // skipped, handle parked at 100
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("BBBB")); err != nil { // must land at offset 4
		t.Fatal(err)
	}
	f.Close()

	got, err := vfs.ReadFile(base, "/f")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte{0, 0, 0, 0}, []byte("BBBB")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("after skipped write, file = %q (len %d); want %q — sequential offset drifted to where the hook parked the handle",
			got, len(got), want)
	}
	if _, fired := inj.Fired(); !fired {
		t.Fatal("fault never recorded")
	}
}

// TestRunInjectionsTalliesAllSuccessfulRuns pins the documented error
// semantics of runInjections: a run that fails for infrastructure reasons
// (here: a world build error in the middle of the campaign) surfaces as the
// campaign error, but every other run is still tallied and recorded — the
// tally can never silently cover just a prefix of the records.
func TestRunInjectionsTalliesAllSuccessfulRuns(t *testing.T) {
	const runs = 6
	const failCall = 4 // call 1 is the profiling world; call 4 is run index 2
	var calls atomic.Int64
	w := toyWorkload()
	w.NewFS = func() (vfs.FS, error) {
		if calls.Add(1) == failCall {
			return nil, fmt.Errorf("world %d exploded", failCall)
		}
		return vfs.NewMemFS(), nil
	}
	res, err := Campaign(CampaignConfig{
		Fault:       Config{Model: BitFlip},
		Runs:        runs,
		Seed:        11,
		Workers:     1,
		FreshWorlds: true, // rebuild per run so NewFS is hit once per run
	}, w)
	if err == nil {
		t.Fatal("expected the failing run's error to propagate")
	}
	if !strings.Contains(err.Error(), "run 2") {
		t.Fatalf("error names the wrong run: %v", err)
	}
	if got := res.Tally.Total(); got != runs-1 {
		t.Fatalf("tally covers %d runs, want %d (all successful runs, not a prefix)", got, runs-1)
	}
	if got := len(res.Records); got != runs-1 {
		t.Fatalf("records cover %d runs, want %d", got, runs-1)
	}
	for _, rec := range res.Records {
		if rec.Index == 2 {
			t.Fatal("failed run 2 must not appear among the records")
		}
	}
}

// collectSink is an in-memory RecordSink for contract tests.
type collectSink struct {
	meta    CampaignMeta
	began   int
	records []RunRecord
	failAt  int // fail the Nth Record call (0 = never)
}

func (s *collectSink) BeginCampaign(meta CampaignMeta) error {
	s.meta = meta
	s.began++
	return nil
}

func (s *collectSink) Record(rec RunRecord) error {
	if s.failAt > 0 && len(s.records)+1 == s.failAt {
		return fmt.Errorf("sink full")
	}
	s.records = append(s.records, rec)
	return nil
}

func TestCampaignStreamsRecordsToSink(t *testing.T) {
	const runs = 8
	sink := &collectSink{}
	res, err := Campaign(CampaignConfig{
		Fault:          Config{Model: BitFlip},
		Runs:           runs,
		Seed:           5,
		Workers:        4,
		Sink:           sink,
		DiscardRecords: true,
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if sink.began != 1 {
		t.Fatalf("BeginCampaign called %d times", sink.began)
	}
	if sink.meta.Workload != "toy" || sink.meta.Runs != runs || sink.meta.Seed != 5 || sink.meta.ProfileCount == 0 {
		t.Fatalf("sink meta = %+v", sink.meta)
	}
	if len(sink.records) != runs {
		t.Fatalf("sink received %d records, want %d", len(sink.records), runs)
	}
	if res.Records != nil {
		t.Fatalf("DiscardRecords kept %d records in memory", len(res.Records))
	}
	if res.Tally.Total() != runs {
		t.Fatalf("tally covers %d runs despite DiscardRecords, want %d", res.Tally.Total(), runs)
	}
	// The streamed records must be exactly the records an unsunk campaign
	// retains (completion order aside).
	plain, err := Campaign(CampaignConfig{
		Fault: Config{Model: BitFlip}, Runs: runs, Seed: 5, Workers: 1,
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	byIdx := map[int]RunRecord{}
	for _, rec := range sink.records {
		byIdx[rec.Index] = rec
	}
	for _, want := range plain.Records {
		got, ok := byIdx[want.Index]
		if !ok {
			t.Fatalf("run %d never reached the sink", want.Index)
		}
		if got.Target != want.Target || got.Outcome != want.Outcome || got.Fired != want.Fired {
			t.Fatalf("run %d: sink saw %+v, in-memory campaign has %+v", want.Index, got, want)
		}
	}
}

func TestCampaignSinkErrorFailsCampaign(t *testing.T) {
	sink := &collectSink{failAt: 3}
	_, err := Campaign(CampaignConfig{
		Fault: Config{Model: BitFlip}, Runs: 6, Seed: 5, Workers: 1, Sink: sink,
	}, toyWorkload())
	if err == nil || !strings.Contains(err.Error(), "record sink") {
		t.Fatalf("sink failure must fail the campaign; got %v", err)
	}
	if len(sink.records) != 2 {
		t.Fatalf("sink must go sterile after its first error; received %d records", len(sink.records))
	}
}

func TestCampaignRunFilterExecutesSubsetDeterministically(t *testing.T) {
	const runs = 10
	full, err := Campaign(CampaignConfig{
		Fault: Config{Model: BitFlip}, Runs: runs, Seed: 9, Workers: 2,
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	half, err := Campaign(CampaignConfig{
		Fault: Config{Model: BitFlip}, Runs: runs, Seed: 9, Workers: 2,
		RunFilter: func(idx int) bool { return idx%2 == 1 },
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(half.Records); got != runs/2 {
		t.Fatalf("filtered campaign ran %d records, want %d", got, runs/2)
	}
	for i, rec := range half.Records {
		want := full.Records[rec.Index]
		if rec.Index%2 != 1 {
			t.Fatalf("record %d has unowned index %d", i, rec.Index)
		}
		if rec.Target != want.Target || rec.Outcome != want.Outcome || rec.Mutation.BitPos != want.Mutation.BitPos {
			t.Fatalf("filtered run %d diverged from the unfiltered run: %+v vs %+v", rec.Index, rec, want)
		}
	}
	if half.Tally.Total() != runs/2 {
		t.Fatalf("filtered tally covers %d runs, want %d", half.Tally.Total(), runs/2)
	}
}
