package core

import (
	"fmt"
	"io"

	"ffis/internal/vfs"
)

// ShortRead delivers fewer bytes than the application requested while
// reporting success — a device or transport truncating a transfer without
// raising an error. Robust read loops retry the remainder and tally
// benign; consumers that trust a single read's count see a silently
// truncated record. Like MisdirectedWrite, this model ships purely as a
// registration with zero edits to the injector or any campaign driver.
var ShortRead = Register(shortReadModel{}, "short")

type shortReadModel struct{ BaseModel }

func (shortReadModel) Name() string  { return "short-read" }
func (shortReadModel) Short() string { return "SR" }

func (shortReadModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimRead}
}

func (shortReadModel) Describe() string {
	return "the read returns fewer bytes than requested with a success status; media unchanged"
}

// MutateRead serves a strict prefix of the request: the device read runs
// with a truncated destination, so a sequential handle's offset advances
// only past the delivered bytes. A draw of zero delivers nothing at all —
// an empty success a read-until-EOF loop mistakes for end of file.
func (sr shortReadModel) MutateRead(env Env, op ReadOp) (int, error) {
	want := len(op.Buf)
	serve := env.Intn(want) // 0..want-1: strictly fewer than requested
	var n int
	var err error
	if serve > 0 {
		n, err = op.Do(op.Buf[:serve])
	}
	if err == io.EOF {
		// The truncation itself reports success; a genuinely exhausted
		// file keeps its EOF on the next, uninjected read.
		err = nil
	}
	env.Record(Mutation{Model: sr, Path: op.Path, Offset: op.Off, Length: want, Kept: n})
	return n, err
}

func (shortReadModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("short-read %s off=%d requested=%d delivered=%d (success)", m.Path, m.Offset, m.Length, m.Kept)
}
