package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// RepeatedMisdirection is the firmware-bug rendering of a misdirected
// write: once the bug triggers (at the drawn target instance), every Nth
// write from then on is steered to the wrong LBA until the shot budget runs
// out — a single temporally correlated event, not independent faults. The
// model is the registry's first MultiShot registration: the injector,
// campaign runner, engine, results store, and experiment grids all pick up
// the multi-instance behavior through Signature.ShotBudget with no edits of
// their own.
var RepeatedMisdirection = Register(repeatedMisdirectionModel{}, "repeat-misdirect")

type repeatedMisdirectionModel struct{ BaseModel }

func (repeatedMisdirectionModel) Name() string  { return "repeated-misdirection" }
func (repeatedMisdirectionModel) Short() string { return "RM" }

func (repeatedMisdirectionModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimWrite}
}

func (repeatedMisdirectionModel) Describe() string {
	return "from the target on, every Nth write is persisted at a wrong sector-aligned offset (feature: stride, default 4; default budget 4 shots)"
}

// misdirectEvery resolves the stride tunable; the default lives here rather
// than in Feature.normalize so legacy signatures stay bit-identical.
func misdirectEvery(f Feature) int {
	if f.MisdirectEvery > 0 {
		return f.MisdirectEvery
	}
	return 4
}

// Claims selects the target write and every stride-th write after it.
func (repeatedMisdirectionModel) Claims(f Feature, rel int64) bool {
	return rel%int64(misdirectEvery(f)) == 0
}

// DefaultShots bounds the event at four misplaced writes — long enough to
// straddle checkpoint boundaries, short enough that the fault stays a
// transient firmware episode rather than a dead device (that is
// DeviceFailure's regime).
func (repeatedMisdirectionModel) DefaultShots(Feature) int { return 4 }

// MutateWrite performs the displaced write itself through the underlying
// handle, then tells the injector to skip (and acknowledge) the requested
// one — per shot, the same device behavior as MisdirectedWrite.
func (rm repeatedMisdirectionModel) MutateWrite(env Env, op WriteOp) WriteAction {
	f := env.Feature()
	delta := int64(1+env.Intn(8)) * int64(f.SectorSize)
	wrong := op.Off - delta
	if wrong < 0 {
		wrong = op.Off + delta
	}
	m := Mutation{
		Model: rm, Path: op.Path, Offset: op.Off, Length: len(op.Buf),
		Detail: fmt.Sprintf("shot %d persisted at offset %d", env.Shot(), wrong),
	}
	if _, err := op.File.WriteAt(op.Buf, wrong); err != nil {
		m.Dropped = true
		m.Detail = fmt.Sprintf("shot %d misdirected to offset %d and lost (%v)", env.Shot(), wrong, err)
	}
	env.Record(m)
	return WriteAction{Skip: true}
}

func (repeatedMisdirectionModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("repeated-misdirection %s off=%d len=%d %s", m.Path, m.Offset, m.Length, m.Detail)
}
