package core

import (
	"errors"
	"runtime"
	"strings"
	"sync"
)

// CampaignSpec is one cell of an Engine grid: a workload under one fault
// configuration (cell × model × placement in the Figure 7 + tiered
// vocabulary).
type CampaignSpec struct {
	// Key uniquely labels the cell in results and progress events, e.g.
	// "nyx/bf/scratch-only".
	Key string
	// WorldKey groups specs that share a storage world for memoization:
	// specs with equal WorldKeys run on clones of ONE post-Setup snapshot
	// and share profile counts and golden snapshots, so they must have
	// identical NewFS and Setup (Run/Classify may differ — e.g. the Nyx
	// with/without-average-detector pair). Empty defaults to Workload.Name,
	// which is only safe while every same-named spec builds the same world;
	// grids mixing flat and tiered variants of one application must set it.
	WorldKey string
	Workload Workload
	// Config drives the campaign. Workers is ignored: the engine's shared
	// pool (Engine.Jobs) bounds parallelism across the whole grid.
	Config CampaignConfig
}

func (s CampaignSpec) worldKey() string {
	if s.WorldKey != "" {
		return s.WorldKey
	}
	return s.Workload.Name
}

// GridResult pairs a spec with its campaign outcome. Err is ErrNoTargets
// (test with errors.Is) when the armed scope receives none of the
// workload's I/O.
type GridResult struct {
	Spec   CampaignSpec
	Result CampaignResult
	Err    error
}

// Engine schedules a grid of fault-injection campaigns over one shared
// bounded worker pool. This is the statistical-scale substrate the paper's
// methodology implies (1,000 runs × cells × models) and the ROADMAP's
// "fast as the hardware allows" demands: Setup executes once per world (not
// once per run), every injection run receives a copy-on-write clone of the
// post-Setup snapshot, profile counts and golden snapshots are memoized by
// (world, mounts) key across cells, and all runs of all campaigns share one
// pool so the grid saturates the machine regardless of how unevenly cells
// are sized.
//
// Determinism: each run's RNG stream is derived purely from the campaign
// seed and the run index (runStream), and results are reported in spec
// order, so grid results are independent of Jobs, scheduling interleavings,
// and the order specs are submitted in.
type Engine struct {
	// Jobs bounds concurrently executing work items (setup/profile passes
	// and injection runs) across the whole grid; <= 0 selects GOMAXPROCS.
	Jobs int
	// Events, when non-nil, receives the structured run-lifecycle stream
	// of every campaign the engine runs. Streams for different campaigns
	// interleave, but each subscriber sees a single serialized order and
	// its callback never runs concurrently with itself.
	Events *EventBus

	mu       sync.Mutex
	prepared map[string]*enginePrep
}

// enginePrep is the per-world memoization record: the snapshots (one per
// world mode, so a FreshWorlds reference spec never poisons its COW
// siblings or vice versa) plus profile counts and golden snapshots keyed
// within it.
type enginePrep struct {
	w Workload // the workload that builds this world (first spec wins)

	mu       sync.Mutex
	snaps    [2]*snapMemo // indexed by the FreshWorlds flag
	profiles map[string]*profileMemo
	goldens  map[string]*goldenMemo
}

type snapMemo struct {
	once sync.Once
	snap *WorldSnapshot
	err  error
}

type profileMemo struct {
	once  sync.Once
	count int64
	err   error
}

type goldenMemo struct {
	once sync.Once
	snap map[string][]byte
	err  error
}

func (e *Engine) jobs() int {
	if e.Jobs > 0 {
		return e.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) publish(ev Event) {
	if e.Events != nil {
		e.Events.Publish(ev)
	}
}

// prep returns (creating on first use) the memoization record for key.
func (e *Engine) prep(key string, w Workload) *enginePrep {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prepared == nil {
		e.prepared = map[string]*enginePrep{}
	}
	p, ok := e.prepared[key]
	if !ok {
		p = &enginePrep{w: w, profiles: map[string]*profileMemo{}, goldens: map[string]*goldenMemo{}}
		e.prepared[key] = p
	}
	return p
}

// snapshot builds (once per world key and mode) the post-Setup snapshot.
func (p *enginePrep) snapshot(fresh bool) (*WorldSnapshot, error) {
	idx := 0
	if fresh {
		idx = 1
	}
	p.mu.Lock()
	m := p.snaps[idx]
	if m == nil {
		m = &snapMemo{}
		p.snaps[idx] = m
	}
	p.mu.Unlock()
	m.once.Do(func() {
		m.snap, m.err = newSnapshot(p.w, fresh)
	})
	return m.snap, m.err
}

// profileKey distinguishes profile counts within one world: the count
// depends on the target primitive, the armed mounts, and the world mode —
// not the fault model's mutation details.
func profileKey(sig Signature, mounts []string, fresh bool) string {
	key := string(sig.Primitive) + "\x00" + strings.Join(mounts, "\x00")
	if fresh {
		key += "\x00fresh"
	}
	return key
}

// profileCount memoizes the fault-free profiling pass by (primitive,
// mounts) within the world. Three fault models targeting the write
// primitive on the same world cost one profiling run, not three.
func (p *enginePrep) profileCount(sig Signature, mounts []string, fresh bool) (int64, error) {
	snap, err := p.snapshot(fresh)
	if err != nil {
		return 0, err
	}
	key := profileKey(sig, mounts, fresh)
	p.mu.Lock()
	m, ok := p.profiles[key]
	if !ok {
		m = &profileMemo{}
		p.profiles[key] = m
	}
	p.mu.Unlock()
	m.once.Do(func() {
		world, err := snap.World()
		if err != nil {
			m.err = err
			return
		}
		m.count, m.err = profileWorld(world, p.w, sig, mounts)
	})
	return m.count, m.err
}

// GoldenSnapshot returns the memoized fault-free output snapshot of the
// spec's world under root: the golden run executes once per (world, root)
// across the entire grid. Specs sharing a WorldKey share the result.
func (e *Engine) GoldenSnapshot(spec CampaignSpec, root string) (map[string][]byte, error) {
	p := e.prep(spec.worldKey(), spec.Workload)
	snap, err := p.snapshot(spec.Config.FreshWorlds)
	if err != nil {
		return nil, err
	}
	key := root
	if spec.Config.FreshWorlds {
		key += "\x00fresh"
	}
	p.mu.Lock()
	m, ok := p.goldens[key]
	if !ok {
		m = &goldenMemo{}
		p.goldens[key] = m
	}
	p.mu.Unlock()
	m.once.Do(func() {
		world, err := snap.World()
		if err != nil {
			m.err = err
			return
		}
		m.snap, m.err = goldenOnWorld(world, p.w, root)
	})
	return m.snap, m.err
}

// Run executes every spec of the grid and returns results in spec order.
// Campaign failures are reported per cell in GridResult.Err; the grid keeps
// going, so one starved placement (ErrNoTargets) does not abort the sweep.
func (e *Engine) Run(specs []CampaignSpec) []GridResult {
	sem := make(chan struct{}, e.jobs())
	out := make([]GridResult, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		i, spec := i, spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.runSpec(spec, sem)
			out[i] = GridResult{Spec: spec, Result: res, Err: err}
		}()
	}
	wg.Wait()
	return out
}

// runSpec runs one campaign cell on the shared pool: validate, memoized
// profile + snapshot, then hand the spec to a Runner. Failures before the
// Runner starts still close the spec's event stream with a terminal
// SpecDone so subscribers see every campaign bracketed.
func (e *Engine) runSpec(spec CampaignSpec, sem chan struct{}) (CampaignResult, error) {
	cfg := spec.Config
	fail := func(err error) (CampaignResult, error) {
		e.publish(Event{Kind: EventSpecDone, Key: spec.Key, Total: cfg.Runs, Err: err})
		return CampaignResult{}, err
	}
	if cfg.Runs <= 0 {
		return fail(errors.New("core: campaign needs Runs > 0"))
	}
	sig := cfg.Fault.Signature()
	if err := sig.Validate(); err != nil {
		return fail(err)
	}
	p := e.prep(spec.worldKey(), spec.Workload)

	// Preparation (world build + profiling run) is real work: it occupies a
	// pool slot like any injection run.
	sem <- struct{}{}
	count, err := p.profileCount(sig, cfg.ArmMounts, cfg.FreshWorlds)
	<-sem
	if err != nil {
		return fail(err)
	}
	if count == 0 {
		e.publish(Event{Kind: EventSpecDone, Key: spec.Key, Total: cfg.Runs, Err: ErrNoTargets})
		return CampaignResult{Workload: spec.Workload.Name, Signature: sig}, ErrNoTargets
	}
	snap, err := p.snapshot(cfg.FreshWorlds)
	if err != nil {
		return fail(err)
	}
	r := &Runner{
		Key:          spec.Key,
		Workload:     spec.Workload,
		Config:       cfg,
		Snapshot:     snap,
		ProfileCount: count,
		Pool:         sem,
		Events:       e.Events,
	}
	return r.Run()
}
