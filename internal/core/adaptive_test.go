package core

import (
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/stats"
)

// adaptiveToyCampaign runs the toy workload under bit-flip with the given
// rule and worker count.
func adaptiveToyCampaign(t *testing.T, rule *stats.StopRule, workers int) CampaignResult {
	t.Helper()
	res, err := Campaign(CampaignConfig{
		Fault:   Config{Model: BitFlip},
		Runs:    400,
		Seed:    42,
		Workers: workers,
		Stop:    rule,
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdaptiveStopsIndependentOfWorkers is the core half of the determinism
// satellite: the stopping index and the tallies must be a function of
// (seed, rule) alone, never of pool width or scheduling.
func TestAdaptiveStopsIndependentOfWorkers(t *testing.T) {
	rule := &stats.StopRule{TargetHalfWidth: 0.08, MinRuns: 50, CheckEvery: 25}
	serial := adaptiveToyCampaign(t, rule, 1)
	parallel := adaptiveToyCampaign(t, rule, 8)
	if serial.StopIndex != parallel.StopIndex {
		t.Fatalf("stop index differs by worker count: %d vs %d", serial.StopIndex, parallel.StopIndex)
	}
	if serial.Tally != parallel.Tally {
		t.Fatalf("tallies differ by worker count:\n  %v\n  %v", serial.Tally, parallel.Tally)
	}
	// The toy cell is (nearly) deterministic in outcome, so it must stop at
	// the first barrier — spending measurably less than the 400-run budget.
	if serial.StopIndex != 50 {
		t.Fatalf("stop index = %d, want the first barrier (50)", serial.StopIndex)
	}
	if got := len(serial.Records); got != serial.StopIndex {
		t.Fatalf("%d records for stop index %d", got, serial.StopIndex)
	}
}

// TestAdaptiveCapsAtBudget: a rule no cell can satisfy runs the full budget
// and reports StopIndex == Runs — distinguishable from the fixed-budget 0.
func TestAdaptiveCapsAtBudget(t *testing.T) {
	rule := &stats.StopRule{TargetHalfWidth: 0.001, MinRuns: 50, CheckEvery: 100}
	res := adaptiveToyCampaign(t, rule, 4)
	if res.StopIndex != 400 {
		t.Fatalf("stop index = %d, want the 400-run cap", res.StopIndex)
	}
	if res.Tally.Total() != 400 {
		t.Fatalf("tally covers %d runs, want 400", res.Tally.Total())
	}
}

// TestAdaptivePrefixMatchesFixedBudget: the adaptive campaign's records are
// bit-identical to the same index prefix of the fixed-budget campaign — the
// rule only decides where the sequence ends, never what is in it.
func TestAdaptivePrefixMatchesFixedBudget(t *testing.T) {
	fixed, err := Campaign(CampaignConfig{
		Fault: Config{Model: BitFlip}, Runs: 400, Seed: 42, Workers: 4,
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	adaptive := adaptiveToyCampaign(t, &stats.StopRule{TargetHalfWidth: 0.08, MinRuns: 50, CheckEvery: 25}, 4)
	if fixed.StopIndex != 0 {
		t.Fatalf("fixed-budget campaign reports stop index %d, want 0", fixed.StopIndex)
	}
	for i, rec := range adaptive.Records {
		want := fixed.Records[i]
		if rec.Index != want.Index || rec.Target != want.Target || rec.Outcome != want.Outcome {
			t.Fatalf("record %d differs between adaptive and fixed: %+v vs %+v", i, rec, want)
		}
	}
}

// TestAdaptiveResumeWithPriorOutcomes: skipping already-persisted indices
// via RunFilter while feeding their outcomes back through PriorOutcome must
// reach the same stopping decision as the uninterrupted campaign.
func TestAdaptiveResumeWithPriorOutcomes(t *testing.T) {
	rule := &stats.StopRule{TargetHalfWidth: 0.08, MinRuns: 50, CheckEvery: 25}
	full := adaptiveToyCampaign(t, rule, 4)
	prior := map[int]classify.Outcome{}
	const persisted = 30 // "crash" left the first 30 runs on disk
	for _, rec := range full.Records[:persisted] {
		prior[rec.Index] = rec.Outcome
	}
	res, err := Campaign(CampaignConfig{
		Fault: Config{Model: BitFlip}, Runs: 400, Seed: 42, Workers: 4,
		Stop:      rule,
		RunFilter: func(idx int) bool { return idx >= persisted },
		PriorOutcome: func(idx int) (classify.Outcome, bool) {
			o, ok := prior[idx]
			return o, ok
		},
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.StopIndex != full.StopIndex {
		t.Fatalf("resumed stop index %d, want %d", res.StopIndex, full.StopIndex)
	}
	if got := res.Tally.Total() + persisted; got != full.Tally.Total() {
		t.Fatalf("resumed executed %d runs + %d persisted, want %d total",
			res.Tally.Total(), persisted, full.Tally.Total())
	}
}

// TestAdaptiveRequiresPriorForFilteredRuns: an adaptive campaign whose
// RunFilter skips indices without a PriorOutcome source cannot evaluate
// complete prefixes and must refuse, and a skipped index the source does
// not know must fail the campaign rather than mis-evaluate the rule.
func TestAdaptiveRequiresPriorForFilteredRuns(t *testing.T) {
	cfg := CampaignConfig{
		Fault: Config{Model: BitFlip}, Runs: 100, Seed: 1, Workers: 2,
		Stop:      &stats.StopRule{TargetHalfWidth: 0.1},
		RunFilter: func(idx int) bool { return idx%2 == 0 },
	}
	if _, err := Campaign(cfg, toyWorkload()); err == nil ||
		!strings.Contains(err.Error(), "PriorOutcome") {
		t.Fatalf("err = %v, want PriorOutcome requirement", err)
	}
	cfg.PriorOutcome = func(int) (classify.Outcome, bool) { return 0, false }
	if _, err := Campaign(cfg, toyWorkload()); err == nil ||
		!strings.Contains(err.Error(), "no persisted outcome") {
		t.Fatalf("err = %v, want missing-prior failure", err)
	}
}

// TestAdaptiveRejectsBadRule: rule validation surfaces before any run
// executes.
func TestAdaptiveRejectsBadRule(t *testing.T) {
	_, err := Campaign(CampaignConfig{
		Fault: Config{Model: BitFlip}, Runs: 100, Seed: 1,
		Stop: &stats.StopRule{}, // no target half-width
	}, toyWorkload())
	if err == nil {
		t.Fatal("campaign accepted a stopping rule without a target half-width")
	}
}
