//go:build race

package core

// raceEnabled reports that this binary was built with the race detector;
// allocation-count assertions are skipped there because instrumentation
// changes the allocation profile.
const raceEnabled = true
