package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// UnreadableSector fails the target read instance with EIO, modelling an
// uncorrectable ECC error: the device refuses to deliver the sector at all
// rather than deliver it silently corrupted.
var UnreadableSector = Register(unreadableSectorModel{}, "unreadable")

type unreadableSectorModel struct{ BaseModel }

func (unreadableSectorModel) Name() string  { return "unreadable-sector" }
func (unreadableSectorModel) Short() string { return "UR" }

func (unreadableSectorModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimRead}
}

func (unreadableSectorModel) Describe() string {
	return "the read fails with EIO (uncorrectable ECC); no data is delivered"
}

// MutateRead records the uncorrectable-ECC mutation and returns the EIO the
// application sees. The underlying read never executes: the device delivers
// nothing, and a sequential handle's offset stays where it was.
func (ur unreadableSectorModel) MutateRead(env Env, op ReadOp) (int, error) {
	env.Record(Mutation{
		Model: ur, Path: op.Path, Offset: op.Off,
		Length: len(op.Buf), Unreadable: true,
	})
	return 0, &vfs.PathError{Op: "read", Path: op.Path, Err: vfs.ErrUnreadable}
}

func (unreadableSectorModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("unreadable-sector %s off=%d len=%d (EIO)", m.Path, m.Offset, m.Length)
}
