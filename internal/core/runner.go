package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ffis/internal/classify"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Runner owns the per-run campaign lifecycle — clone-or-rebuild the
// world, arm the injector, run the workload, classify the artifact,
// record and tally — for exactly one spec, parameterized by the
// CampaignConfig hooks (Sink, RunFilter, Abort, Stop barriers,
// PriorOutcome). It is the only place in the tree that sequences those
// stages: Campaign and Engine.runSpec are thin drivers that differ only
// in where the snapshot, profile count, and worker pool come from, and
// every other layer (persisted grids, distributed workers) goes through
// them.
type Runner struct {
	// Key labels the spec's events; empty falls back to the workload name.
	Key      string
	Workload Workload
	// Config drives the campaign; the caller has already validated the
	// fault signature and Runs > 0.
	Config CampaignConfig
	// Snapshot serves one pristine post-Setup world per run (COW clone or
	// full rebuild — the snapshot decides).
	Snapshot *WorldSnapshot
	// ProfileCount is the target primitive's dynamic count from the
	// fault-free profiling pass; each run draws its target uniformly
	// from [0, ProfileCount).
	ProfileCount int64
	// Pool bounds concurrent runs: one slot acquired per dispatched run.
	// Campaign hands the Runner a private pool sized by Workers; the
	// Engine hands every Runner its single grid-wide pool.
	Pool chan struct{}
	// Events, when non-nil, receives the spec's structured stream:
	// SpecStart, one RunDone per successful run, Barrier/StopDecision at
	// adaptive chunk boundaries, and exactly one terminal SpecDone.
	Events *EventBus
}

func (r *Runner) key() string {
	if r.Key != "" {
		return r.Key
	}
	return r.Workload.Name
}

func (r *Runner) publish(ev Event) {
	if r.Events == nil {
		return
	}
	ev.Key = r.key()
	r.Events.Publish(ev)
}

// Run executes the spec's injection runs (all of [0, Runs), or the
// RunFilter subset) against worlds served by the snapshot, bounded by the
// pool.
//
// With Config.Stop set, dispatch is chunked at the rule's index barriers:
// each chunk drains completely, the rule is evaluated on the prefix tally
// (executed outcomes plus PriorOutcome for indices the RunFilter
// skipped), and dispatch stops once satisfied. The evaluated prefix is
// always a complete [0, barrier) — never a completion-order sample — so
// the stopping index depends only on (Seed, Runs, rule), not on pool
// width.
//
// Error semantics: a failing run (world build or arming failure — never
// the application's own error, which classification absorbs) does not
// poison its siblings. Every successful run is tallied, recorded, and
// delivered to the sink; the returned error reports the lowest failing
// run index. The result's Tally therefore always covers exactly
// res.Records (plus nothing else), never a silent prefix of them.
func (r *Runner) Run() (CampaignResult, error) {
	cfg, w := r.Config, r.Workload
	sig := cfg.Fault.Signature()
	count := r.ProfileCount
	res := CampaignResult{Workload: w.Name, Signature: sig, ProfileCount: count}
	// A RunFilter (resume skipping persisted indices, shard ownership)
	// shrinks the work actually executed; progress accounting reports the
	// executed total so done/total reaches 100% exactly at completion.
	total := cfg.execTotal()
	r.publish(Event{Kind: EventSpecStart, Total: total, Runs: cfg.Runs, ProfileCount: count})
	fail := func(err error) (CampaignResult, error) {
		r.publish(Event{Kind: EventSpecDone, Done: total, Total: total, Err: err})
		return res, err
	}
	rule, err := cfg.NormalizedStop()
	if err != nil {
		return fail(err)
	}
	if rule != nil && cfg.RunFilter != nil && cfg.PriorOutcome == nil {
		return fail(errors.New("core: adaptive stopping under a RunFilter needs PriorOutcome for the skipped indices (shards cannot run adaptively)"))
	}
	if cfg.Sink != nil {
		if err := cfg.Sink.BeginCampaign(CampaignMeta{
			Workload: w.Name, Signature: sig,
			ProfileCount: count, Runs: cfg.Runs, Seed: cfg.Seed,
			Stop: rule,
		}); err != nil {
			return fail(fmt.Errorf("core: record sink: %w", err))
		}
	}
	// In streaming mode (DiscardRecords) nothing per-index is retained:
	// the tally accumulates online and memory stays O(pool).
	var records []RunRecord
	var ran []bool
	if !cfg.DiscardRecords {
		records = make([]RunRecord, cfg.Runs)
		ran = make([]bool, cfg.Runs)
	}
	var (
		wg sync.WaitGroup
		// mu guards the shared accumulators and serializes sink delivery
		// and event publication, so Done counts enter the stream in
		// monotone order and the sink never sees overlapping calls.
		mu       sync.Mutex
		done     int
		tally    classify.Tally
		simTotal int64
		failIdx  = -1
		failErr  error
		sinkErr  error
		// priorTally accumulates the persisted outcomes of skipped indices
		// (adaptive resume); touched only from the dispatch loop, read only
		// after its chunk has drained.
		priorTally classify.Tally
		priorErr   error
		// aborted latches the Abort hook's decision; set only from the
		// dispatch loop, read only after the chunk has drained.
		aborted bool
	)
	// dispatch launches runs for indices [lo, hi) and waits for the chunk
	// to drain, so the caller observes a complete prefix.
	dispatch := func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			if cfg.Abort != nil && cfg.Abort() {
				aborted = true
				break
			}
			if cfg.RunFilter != nil && !cfg.RunFilter(idx) {
				if rule != nil && priorErr == nil {
					if o, ok := cfg.PriorOutcome(idx); ok {
						priorTally.Add(o)
					} else {
						priorErr = fmt.Errorf("core: adaptive resume: no persisted outcome for skipped run %d", idx)
					}
				}
				continue
			}
			idx := idx
			r.Pool <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-r.Pool }()
				rng := runStream(cfg.Seed, idx)
				target := rng.Int64n(count)
				var st stageTimes
				rec, err := func() (RunRecord, error) {
					t0 := time.Now()
					base, err := r.Snapshot.World()
					st.cloneNs = time.Since(t0).Nanoseconds()
					if err != nil {
						return RunRecord{}, err
					}
					return runOnceTimed(base, w, sig, target, rng, cfg.ArmMounts, &st)
				}()
				rec.Index = idx
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if failIdx < 0 || idx < failIdx {
						failIdx, failErr = idx, err
					}
				} else {
					tally.Add(rec.Outcome)
					simTotal += rec.SimNanos
					if records != nil {
						records[idx], ran[idx] = rec, true
					}
					if cfg.Sink != nil && sinkErr == nil {
						// The sink goes sterile after its first error: a
						// persistent store that failed mid-stream must not
						// receive further records it could misorder.
						sinkErr = cfg.Sink.Record(rec)
					}
				}
				done++
				if err == nil {
					r.publish(Event{
						Kind: EventRunDone, Index: idx, Done: done, Total: total,
						Target: rec.Target, Outcome: rec.Outcome, Fired: rec.Fired,
						CloneMicros:    st.cloneNs / 1e3,
						WorkloadNanos:  st.workNs,
						ClassifyMicros: st.classifyNs / 1e3,
						SimNanos:       rec.SimNanos,
					})
				}
			}()
		}
		wg.Wait()
	}
	if rule == nil {
		dispatch(0, cfg.Runs)
	} else {
		for next := 0; ; {
			b := rule.NextBarrier(next)
			dispatch(next, b)
			next = b
			if failErr != nil || sinkErr != nil || priorErr != nil || aborted {
				break
			}
			res.StopIndex = b
			// wg has drained, so done/tally have no concurrent writers.
			r.publish(Event{Kind: EventBarrier, Barrier: b, Done: done, Total: total})
			if b >= rule.MaxRuns {
				break
			}
			// The complete prefix [0, b): executed outcomes plus the
			// persisted outcomes of skipped indices.
			outcomes := classify.Outcomes()
			counts := make([]int, len(outcomes))
			trials := 0
			for i, o := range outcomes {
				counts[i] = tally.Count(o) + priorTally.Count(o)
				trials += counts[i]
			}
			stopped := rule.Satisfied(counts, trials)
			r.publish(Event{Kind: EventStopDecision, StopIndex: b, Stopped: stopped, Done: done, Total: total})
			if stopped {
				break
			}
		}
		// Persist the decision: a sink that stores records by index needs
		// the stop index to declare the stream complete.
		if sr, ok := cfg.Sink.(StopRecorder); ok && failErr == nil && sinkErr == nil && priorErr == nil && !aborted {
			sinkErr = sr.RecordStop(res.StopIndex)
		}
	}

	res.Tally = tally
	res.SimNanos = simTotal
	if records != nil {
		for idx, ok := range ran {
			if ok {
				res.Records = append(res.Records, records[idx])
			}
		}
	}
	switch {
	case failErr != nil:
		return fail(fmt.Errorf("core: run %d: %w", failIdx, failErr))
	case sinkErr != nil:
		return fail(fmt.Errorf("core: record sink: %w", sinkErr))
	case priorErr != nil:
		return fail(priorErr)
	case aborted:
		return fail(ErrAborted)
	}
	// Adaptive early stop: the terminal event reports the runs that
	// actually executed, so progress ends at done/done rather than
	// pretending the unspent budget ran.
	final := total
	if res.StopIndex > 0 && res.StopIndex < cfg.Runs {
		final = res.Tally.Total()
	}
	r.publish(Event{Kind: EventSpecDone, Done: final, Total: final, Result: &res})
	return res, nil
}

// stageTimes carries one run's per-stage wall-clock costs into the event
// stream. They never enter RunRecord: persisted record bytes are a pure
// function of (spec, seed, index), pinned by the seed-pinned golden
// suites, and wall-clock noise must not leak into them.
type stageTimes struct {
	cloneNs    int64
	workNs     int64
	classifyNs int64
}

// RunOnce performs a single fault-injection run with the given target
// instance, returning its record. Each run gets a fresh file system —
// matching the paper, which remounts FFISFS for every run.
func RunOnce(w Workload, sig Signature, target int64, rng *stats.RNG) (RunRecord, error) {
	return RunOnceMounts(w, sig, target, rng, nil)
}

// RunOnceMounts is RunOnce with the injector armed only on the I/O routed
// to the given mount points (empty = the whole file system). The workload
// runs on a view whose armed tiers are wrapped by the injector; outcome
// classification runs on the clean view of the same storage.
func RunOnceMounts(w Workload, sig Signature, target int64, rng *stats.RNG, mounts []string) (RunRecord, error) {
	base, err := buildWorld(w)
	if err != nil {
		return RunRecord{}, err
	}
	var st stageTimes
	return runOnceTimed(base, w, sig, target, rng, mounts, &st)
}

// runOnceTimed performs one injection run on an already-built pristine
// world — arm, run, classify on the clean view — filling st with the
// stage costs the event stream reports.
func runOnceTimed(base vfs.FS, w Workload, sig Signature, target int64, rng *stats.RNG, mounts []string, st *stageTimes) (RunRecord, error) {
	inj := NewInjector(sig, target, rng)
	armed, err := interposeMounts(base, mounts, inj.Wrap)
	if err != nil {
		return RunRecord{}, err
	}
	// Measure only the application's own I/O on the simulated clock: reset
	// before Run (excluding Setup and any profiling charges, and making COW
	// clones and fresh rebuilds indistinguishable), read before
	// classification touches the world.
	vfs.ResetSim(base)
	t := time.Now()
	runErr := runRecovering(w.Run, armed)
	st.workNs = time.Since(t).Nanoseconds()
	simNanos := int64(0)
	if elapsed, ok := vfs.SimElapsed(base); ok {
		simNanos = int64(elapsed)
	}
	t = time.Now()
	outcome := classify.Crash
	if w.Classify != nil {
		outcome = w.Classify(base, runErr)
	} else if runErr == nil {
		outcome = classify.Benign
	}
	st.classifyNs = time.Since(t).Nanoseconds()
	mut, fired := inj.Fired()
	return RunRecord{
		Target:   target,
		Outcome:  outcome,
		Mutation: mut,
		Fired:    fired,
		Shots:    inj.FiredShots(),
		RunErr:   runErr,
		SimNanos: simNanos,
	}, nil
}
