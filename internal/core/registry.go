package core

import (
	"fmt"
	"strings"
	"sync"
)

// The model registry: fault models register themselves at package
// initialization (each built-in model's file calls Register from its var
// declaration) and every campaign driver — CLI flags, experiment grids,
// examples — resolves models through it by name or short code. The
// vocabulary is open: a new model is one new file with a type and a
// Register call, with no edits to the injector, the campaign runner, the
// engine, or any command-line switch.

var (
	regMu    sync.RWMutex
	regOrder []Model
	regIndex map[string]Model
)

// regKey canonicalizes a lookup key: model names, short codes, and aliases
// resolve case-insensitively.
func regKey(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// Register adds a model to the registry under its Name, its Short code,
// and any extra aliases, returning the model so built-ins can register from
// their var declarations. It panics on an empty or duplicate identity —
// registration happens at init time, where a misregistered model should
// fail the process (and the conformance suite) loudly, not surface as a
// campaign that silently resolves the wrong model.
func Register(m Model, aliases ...string) Model {
	regMu.Lock()
	defer regMu.Unlock()
	if regIndex == nil {
		regIndex = map[string]Model{}
	}
	if m == nil {
		panic("core: Register(nil model)")
	}
	if m.Name() == "" || m.Short() == "" {
		panic(fmt.Sprintf("core: model %T needs a non-empty Name and Short", m))
	}
	if len(m.Hosts()) == 0 {
		panic(fmt.Sprintf("core: model %s hosts no primitives", m.Name()))
	}
	keys := append([]string{m.Name(), m.Short()}, aliases...)
	for _, k := range keys {
		key := regKey(k)
		if key == "" || key == "list" {
			panic(fmt.Sprintf("core: model %s: reserved or empty key %q", m.Name(), k))
		}
		// Identity is compared by Name, never by interface equality: a
		// model whose struct type carries uncomparable fields must still
		// get the curated duplicate-key diagnostic, and an alias that
		// restates the model's own name or short code is harmless.
		if prev, ok := regIndex[key]; ok && prev.Name() != m.Name() {
			panic(fmt.Sprintf("core: model key %q already registered by %s", k, prev.Name()))
		}
		regIndex[key] = m
	}
	regOrder = append(regOrder, m)
	return m
}

// Lookup resolves a model by name, short code, or alias, case-insensitively.
func Lookup(name string) (Model, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := regIndex[regKey(name)]
	return m, ok
}

// ParseModel is the one fault-model name parser every command-line surface
// shares: it resolves long names ("dropped-write"), short codes ("DW"), and
// registered aliases ("dropped"), case-insensitively, and returns an error
// naming the known vocabulary otherwise.
func ParseModel(s string) (Model, error) {
	if m, ok := Lookup(s); ok {
		return m, nil
	}
	names := make([]string, 0, len(AllModels()))
	for _, m := range AllModels() {
		names = append(names, fmt.Sprintf("%s (%s)", m.Name(), m.Short()))
	}
	return nil, fmt.Errorf("core: unknown fault model %q; registered models: %s",
		s, strings.Join(names, ", "))
}

// MustModel resolves a model by name and panics if it is not registered —
// for wiring code whose names are compile-time constants.
func MustModel(name string) Model {
	m, err := ParseModel(name)
	if err != nil {
		panic(err)
	}
	return m
}

// AllModels lists every registered fault model: the write-path family
// first, then the read-path family, each in registration order. Grids that
// sweep AllModels pick up newly registered models automatically.
func AllModels() []Model {
	return append(WriteModels(), ReadModels()...)
}

// WriteModels lists the registered write-path models (default target
// primitive is not read) in registration order.
func WriteModels() []Model { return familyModels(false) }

// ReadModels lists the registered read-path models (faults that surface
// when data is consumed, not produced) in registration order.
func ReadModels() []Model { return familyModels(true) }

func familyModels(read bool) []Model {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []Model
	for _, m := range regOrder {
		if IsRead(m) == read {
			out = append(out, m)
		}
	}
	return out
}

// ModelTable renders the registry as the table the -list-models CLI flags
// print: name, short code, hostable primitives, and the feature line.
func ModelTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-6s %-28s %s\n", "fault model", "short", "hostable primitives", "feature")
	for _, m := range AllModels() {
		prims := make([]string, len(m.Hosts()))
		for i, p := range m.Hosts() {
			prims[i] = string(p)
		}
		fmt.Fprintf(&b, "%-20s %-6s %-28s %s\n", m.Name(), m.Short(), strings.Join(prims, ","), m.Describe())
	}
	return b.String()
}
