package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// MisdirectedWrite persists the buffer at a wrong sector-aligned offset
// while reporting success at the requested one — a firmware or driver bug
// steering the write to the wrong LBA. The requested range keeps its stale
// content; the displaced range is silently overwritten. This model ships
// purely as a registration: the injector, campaign runner, engine, CLI
// parsers, and experiment grids pick it up through the registry with no
// edits of their own.
var MisdirectedWrite = Register(misdirectedWriteModel{}, "misdirected")

type misdirectedWriteModel struct{ BaseModel }

func (misdirectedWriteModel) Name() string  { return "misdirected-write" }
func (misdirectedWriteModel) Short() string { return "MD" }

func (misdirectedWriteModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimWrite}
}

func (misdirectedWriteModel) Describe() string {
	return "the buffer is persisted at a wrong sector-aligned offset; success at the requested offset is returned"
}

// MutateWrite performs the displaced write itself through the underlying
// handle, then tells the injector to skip (and acknowledge) the requested
// one. The displacement is 1–8 sectors toward the start of the device —
// an already-programmed LBA — falling forward only when the write sits too
// close to offset zero; either way the victim range is sector-aligned
// relative to the intended offset.
func (md misdirectedWriteModel) MutateWrite(env Env, op WriteOp) WriteAction {
	f := env.Feature()
	delta := int64(1+env.Intn(8)) * int64(f.SectorSize)
	wrong := op.Off - delta
	if wrong < 0 {
		wrong = op.Off + delta
	}
	m := Mutation{
		Model: md, Path: op.Path, Offset: op.Off, Length: len(op.Buf),
		Detail: fmt.Sprintf("persisted at offset %d", wrong),
	}
	if _, err := op.File.WriteAt(op.Buf, wrong); err != nil {
		// The displaced write failed: the device lost the data entirely,
		// degenerating into a dropped write. The application still sees
		// success — that is the point of the fault.
		m.Dropped = true
		m.Detail = fmt.Sprintf("misdirected to offset %d and lost (%v)", wrong, err)
	}
	env.Record(m)
	return WriteAction{Skip: true}
}

func (misdirectedWriteModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("misdirected-write %s off=%d len=%d %s", m.Path, m.Offset, m.Length, m.Detail)
}
