package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ffis/internal/classify"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Workload packages an application for fault-injection campaigns. The
// contract mirrors the paper's workflow (Figure 4): Setup prepares input
// files fault-free, Run executes the application whose I/O is interposed
// on, and Classify inspects the outputs (plus the run error) to produce an
// outcome relative to a golden run.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Setup populates input files. It runs on the bare file system and is
	// never subject to injection (faults target the application's own
	// I/O, not the pre-existing inputs). Optional.
	Setup func(fs vfs.FS) error
	// Run executes the application under test. All I/O it performs flows
	// through the (possibly armed) file system it is handed.
	Run func(fs vfs.FS) error
	// Classify decides the outcome of a finished run. runErr carries the
	// application error or recovered panic, nil for a clean exit. It runs
	// on the bare file system.
	Classify func(fs vfs.FS, runErr error) classify.Outcome
}

// CampaignConfig controls a statistical fault-injection campaign.
type CampaignConfig struct {
	// Fault selects the fault model/primitive/feature to inject.
	Fault Config
	// Runs is the number of fault-injection runs (the paper uses 1,000
	// per cell).
	Runs int
	// Seed makes the campaign reproducible; run i derives its own stream.
	Seed uint64
	// Workers bounds parallel runs; <= 0 selects GOMAXPROCS.
	Workers int
}

// RunRecord captures a single fault-injection run.
type RunRecord struct {
	Index    int
	Target   int64 // dynamic instance of the primitive that was corrupted
	Outcome  classify.Outcome
	Mutation Mutation
	Fired    bool  // false when the target instance was never reached
	RunErr   error // the application error, if any
}

// CampaignResult aggregates a finished campaign.
type CampaignResult struct {
	Workload  string
	Signature Signature
	// ProfileCount is the dynamic count of the target primitive measured
	// by the fault-free profiling run.
	ProfileCount int64
	Tally        classify.Tally
	Records      []RunRecord
}

// Cell renders the result as a labelled classify table cell.
func (r CampaignResult) Cell() classify.Cell {
	return classify.Cell{
		Label: fmt.Sprintf("%s/%s", r.Workload, r.Signature.Model.Short()),
		Tally: r.Tally,
	}
}

// ErrNoTargets is returned when profiling finds zero executions of the
// target primitive, i.e. the fault has nowhere to land.
var ErrNoTargets = errors.New("core: target primitive never executes in workload")

// Profile runs the workload fault-free on a counting file system and
// returns the dynamic execution count of the signature's target primitive
// (the I/O profiler of Figure 4). The workload must succeed fault-free.
func Profile(w Workload, sig Signature) (int64, error) {
	base := vfs.NewMemFS()
	if w.Setup != nil {
		if err := w.Setup(base); err != nil {
			return 0, fmt.Errorf("core: profile setup: %w", err)
		}
	}
	counting := vfs.NewCountingFS(base)
	if err := runRecovering(w.Run, counting); err != nil {
		return 0, fmt.Errorf("core: fault-free profiling run failed: %w", err)
	}
	return counting.Count(sig.Primitive), nil
}

// runRecovering invokes run and converts panics into errors, standing in
// for the process isolation a real injection campaign gets from running the
// application in a child process: a crash must not take the campaign down.
func runRecovering(run func(vfs.FS) error, fs vfs.FS) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: application panic: %v", r)
		}
	}()
	return run(fs)
}

// RunOnce performs a single fault-injection run with the given target
// instance, returning its record. Each run gets a fresh file system —
// matching the paper, which remounts FFISFS for every run.
func RunOnce(w Workload, sig Signature, target int64, rng *stats.RNG) (RunRecord, error) {
	base := vfs.NewMemFS()
	if w.Setup != nil {
		if err := w.Setup(base); err != nil {
			return RunRecord{}, fmt.Errorf("core: setup: %w", err)
		}
	}
	inj := NewInjector(sig, target, rng)
	runErr := runRecovering(w.Run, inj.Wrap(base))
	outcome := classify.Crash
	if w.Classify != nil {
		outcome = w.Classify(base, runErr)
	} else if runErr == nil {
		outcome = classify.Benign
	}
	mut, fired := inj.Fired()
	return RunRecord{
		Target:   target,
		Outcome:  outcome,
		Mutation: mut,
		Fired:    fired,
		RunErr:   runErr,
	}, nil
}

// Campaign executes a full statistical fault-injection campaign: profile,
// then cfg.Runs injection runs with uniformly random targets, classified
// against the workload's own notion of the golden output.
func Campaign(cfg CampaignConfig, w Workload) (CampaignResult, error) {
	if cfg.Runs <= 0 {
		return CampaignResult{}, errors.New("core: campaign needs Runs > 0")
	}
	sig := cfg.Fault.Signature()
	count, err := Profile(w, sig)
	if err != nil {
		return CampaignResult{}, err
	}
	if count == 0 {
		return CampaignResult{}, ErrNoTargets
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}

	records := make([]RunRecord, cfg.Runs)
	errs := make([]error, cfg.Runs)
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				// Each run derives an independent, reproducible stream
				// from (seed, run index).
				rng := stats.NewRNG(cfg.Seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15)
				target := int64(rng.Intn(int(count)))
				rec, err := RunOnce(w, sig, target, rng)
				rec.Index = idx
				records[idx] = rec
				errs[idx] = err
			}
		}()
	}
	for i := 0; i < cfg.Runs; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	res := CampaignResult{
		Workload:     w.Name,
		Signature:    sig,
		ProfileCount: count,
		Records:      records,
	}
	for i, rec := range records {
		if errs[i] != nil {
			return res, fmt.Errorf("core: run %d: %w", i, errs[i])
		}
		res.Tally.Add(rec.Outcome)
	}
	return res, nil
}

// GoldenSnapshot captures the bytes of every file under root after a
// fault-free run; classifiers use it for the paper's "bit-wise identical"
// benign test.
func GoldenSnapshot(w Workload, root string) (map[string][]byte, error) {
	fs := vfs.NewMemFS()
	if w.Setup != nil {
		if err := w.Setup(fs); err != nil {
			return nil, err
		}
	}
	if err := runRecovering(w.Run, fs); err != nil {
		return nil, fmt.Errorf("core: golden run failed: %w", err)
	}
	return Snapshot(fs, root)
}

// Snapshot reads every file under root into a path→content map.
func Snapshot(fs vfs.FS, root string) (map[string][]byte, error) {
	out := map[string][]byte{}
	err := vfs.Walk(fs, root, func(p string, info vfs.FileInfo) error {
		data, err := vfs.ReadFile(fs, p)
		if err != nil {
			return err
		}
		out[p] = data
		return nil
	})
	return out, err
}
