package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ffis/internal/classify"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Workload packages an application for fault-injection campaigns. The
// contract mirrors the paper's workflow (Figure 4): Setup prepares input
// files fault-free, Run executes the application whose I/O is interposed
// on, and Classify inspects the outputs (plus the run error) to produce an
// outcome relative to a golden run.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Setup populates input files. It runs on the bare file system and is
	// never subject to injection (faults target the application's own
	// I/O, not the pre-existing inputs). Optional.
	Setup func(fs vfs.FS) error
	// Run executes the application under test. All I/O it performs flows
	// through the (possibly armed) file system it is handed.
	Run func(fs vfs.FS) error
	// Classify decides the outcome of a finished run. runErr carries the
	// application error or recovered panic, nil for a clean exit. It runs
	// on the bare file system.
	Classify func(fs vfs.FS, runErr error) classify.Outcome
	// NewFS constructs the storage world for one run (golden, profiling,
	// and every injection run alike — each gets a fresh world, as the
	// paper remounts FFISFS per run). Nil selects a bare MemFS. Tiered
	// campaigns return a *vfs.MountFS here so that CampaignConfig.ArmMounts
	// can aim the injector at a single storage tier.
	NewFS func() (vfs.FS, error)
}

// newWorld builds the workload's file-system world for one run.
func newWorld(w Workload) (vfs.FS, error) {
	if w.NewFS == nil {
		return vfs.NewMemFS(), nil
	}
	return w.NewFS()
}

// CampaignConfig controls a statistical fault-injection campaign.
type CampaignConfig struct {
	// Fault selects the fault model/primitive/feature to inject.
	Fault Config
	// Runs is the number of fault-injection runs (the paper uses 1,000
	// per cell).
	Runs int
	// Seed makes the campaign reproducible; run i derives its own stream.
	Seed uint64
	// Workers bounds parallel runs; <= 0 selects GOMAXPROCS.
	Workers int
	// ArmMounts restricts injection (and the profiling count) to the I/O
	// routed to these mount points of the workload's *vfs.MountFS world:
	// the fault lives in one storage tier, every other tier stays clean.
	// Requires Workload.NewFS to return a *vfs.MountFS. Empty arms the
	// whole file system, the paper's flat single-device setup.
	ArmMounts []string
	// FreshWorlds forces a full world rebuild (NewFS + Setup) for every run
	// instead of handing each run a copy-on-write clone of a single
	// post-Setup snapshot — the paper's literal remount-per-run procedure.
	// Results are identical either way (clones are bit-identical to fresh
	// builds); this is the reference path equivalence tests and the
	// engine-speedup benchmarks compare against.
	FreshWorlds bool
	// Sink, when non-nil, receives every finished run record as it
	// completes: BeginCampaign once after profiling succeeds, then one
	// Record call per successful run. Delivery is serialized (calls never
	// overlap) but arrives in completion order, not index order — a
	// persistent sink that needs index order (internal/results) reorders
	// internally. A sink error aborts record delivery and fails the
	// campaign; records already delivered stay delivered.
	Sink RecordSink
	// DiscardRecords drops the per-run Records slice from the
	// CampaignResult — the Tally still covers every run — so large grids
	// that stream records to a Sink (or only need rates) run in O(workers)
	// memory instead of O(Runs).
	DiscardRecords bool
	// RunFilter, when non-nil, selects which run indices in [0, Runs)
	// execute; the rest are skipped entirely. Because each run's RNG
	// stream derives purely from (Seed, index) via runStream, the executed
	// subset produces records bit-identical to the same indices of an
	// unfiltered campaign — this is what makes persisted campaigns
	// resumable (skip already-stored indices) and shardable (each shard
	// owns index % n == i) with no statistical caveats. The Tally and
	// Records of the result cover only the executed indices.
	RunFilter func(idx int) bool
	// Stop enables adaptive, confidence-driven stopping: runs dispatch in
	// chunks up to the rule's fixed index barriers, and at each barrier the
	// complete outcome tally of the prefix [0, barrier) decides whether the
	// campaign stops there. Runs is the fixed budget the rule is normalized
	// against (its MaxRuns cap). Because barriers are index-determined and
	// each run's outcome derives purely from (Seed, index), the stopping
	// index is independent of Workers and scheduling. Nil keeps the classic
	// fixed-budget campaign, bit for bit.
	Stop *stats.StopRule
	// PriorOutcome reports the already-persisted outcome of a run index the
	// RunFilter skips. Adaptive campaigns require it whenever RunFilter is
	// set: a barrier decision needs the complete prefix tally, so skipped
	// indices must contribute their stored outcomes (resume); a shard,
	// which cannot know its siblings' outcomes, cannot run adaptively.
	PriorOutcome func(idx int) (classify.Outcome, bool)
	// Abort, when non-nil, is polled before each run dispatch; once it
	// returns true the campaign stops launching new runs, drains the ones
	// in flight, and fails with ErrAborted. Records already delivered to
	// the Sink stay delivered, and because delivery-side reordering only
	// ever persists in-order prefixes, an aborted campaign leaves behind
	// exactly the resumable prefix a killed process would. A distributed
	// worker sets this to its lease-revocation check so compute stops as
	// soon as the coordinator has re-queued the spec elsewhere.
	Abort func() bool
}

// ErrAborted reports a campaign stopped by its CampaignConfig.Abort hook:
// not a failure of any run, but an external decision (typically a lapsed
// work lease) that the remaining runs are no longer this process's to
// execute. Test with errors.Is.
var ErrAborted = errors.New("core: campaign aborted")

// LeaseFilter returns the RunFilter of a work lease over a partially
// persisted spec: only indices at or after start execute, the resume-at-
// first-missing-index discipline of the distributed coordinator. Because
// run streams derive purely from (Seed, index), the executed suffix is
// bit-identical to the same indices of an uninterrupted campaign — a dead
// worker's persisted prefix plus a successor's leased suffix reassemble
// the exact single-machine record file.
func LeaseFilter(start int) func(idx int) bool {
	return func(idx int) bool { return idx >= start }
}

// NormalizedStop resolves the campaign's adaptive stopping rule against its
// run budget: every field concrete, as persisted in record headers. Nil
// when the campaign is fixed-budget.
func (cfg CampaignConfig) NormalizedStop() (*stats.StopRule, error) {
	if cfg.Stop == nil {
		return nil, nil
	}
	r, err := cfg.Stop.Normalize(cfg.Runs)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// execTotal counts the run indices the campaign will actually execute
// under its RunFilter.
func (cfg CampaignConfig) execTotal() int {
	if cfg.RunFilter == nil {
		return cfg.Runs
	}
	n := 0
	for idx := 0; idx < cfg.Runs; idx++ {
		if cfg.RunFilter(idx) {
			n++
		}
	}
	return n
}

// CampaignMeta identifies the campaign a record stream belongs to: what a
// persistent sink needs to label (and, on resume, re-validate) its stream.
type CampaignMeta struct {
	Workload     string
	Signature    Signature
	ProfileCount int64
	Runs         int
	Seed         uint64
	// Stop is the normalized adaptive stopping rule, nil for fixed-budget
	// campaigns. It is part of the stream's identity: records produced
	// under a different rule stop at a different index.
	Stop *stats.StopRule
}

// RecordSink streams finished run records out of a campaign while it runs,
// so results reach durable storage before the process exits and the
// campaign need not retain them in memory. Implementations never see
// overlapping calls.
type RecordSink interface {
	// BeginCampaign is invoked once per campaign, after the profiling pass
	// succeeds and before any Record call. A resuming sink validates meta
	// against its persisted header here: a mismatched profile count or
	// seed means the stored records cannot belong to this campaign.
	BeginCampaign(meta CampaignMeta) error
	// Record receives one successfully completed run.
	Record(RunRecord) error
}

// StopRecorder is the optional RecordSink extension for adaptive campaigns:
// after the stopping rule decides, the campaign hands the sink the stop
// index so it can persist the decision with the records (internal/results
// rewrites its header line on finalize). A sink without this method simply
// never learns the stop index — the records themselves are unaffected.
type StopRecorder interface {
	RecordStop(stopIndex int) error
}

// RunRecord captures a single fault-injection run.
type RunRecord struct {
	Index    int
	Target   int64 // dynamic instance of the primitive that was corrupted
	Outcome  classify.Outcome
	Mutation Mutation // the first (primary) mutation of the event
	Fired    bool     // false when the target instance was never reached
	Shots    int      // shots fired; 1 for the single-shot family, 0 when never fired
	RunErr   error    // the application error, if any
	// SimNanos is the simulated I/O time the run charged against its
	// world's latency-modeled backends (vfs.SimClocked), zero on worlds
	// with no latency modeling. The clock is reset immediately before the
	// application runs, so setup/profiling I/O is excluded and COW-cloned
	// and rebuilt worlds report identical times.
	SimNanos int64
}

// CampaignResult aggregates a finished campaign.
type CampaignResult struct {
	Workload  string
	Signature Signature
	// ProfileCount is the dynamic count of the target primitive measured
	// by the fault-free profiling run.
	ProfileCount int64
	Tally        classify.Tally
	Records      []RunRecord
	// StopIndex is the adaptive stopping decision: run indices [0,
	// StopIndex) exist and nothing after them does. 0 means the campaign
	// ran its fixed budget (no stopping rule); an adaptive campaign that
	// reaches its cap reports StopIndex == Runs, keeping "adaptive, capped"
	// distinguishable from "fixed" in persisted headers.
	StopIndex int
	// SimNanos is the total simulated I/O time over all executed runs,
	// zero when the world has no latency-modeled backend. Deterministic:
	// per-run charges are interleaving-independent sums, so the total
	// depends only on (Seed, Runs), never on Workers.
	SimNanos int64
}

// Cell renders the result as a labelled classify table cell.
func (r CampaignResult) Cell() classify.Cell {
	return classify.Cell{
		Label: fmt.Sprintf("%s/%s", r.Workload, r.Signature.Model.Short()),
		Tally: r.Tally,
	}
}

// ErrNoTargets is returned when profiling finds zero executions of the
// target primitive, i.e. the fault has nowhere to land.
var ErrNoTargets = errors.New("core: target primitive never executes in workload")

// Profile runs the workload fault-free on a counting file system and
// returns the dynamic execution count of the signature's target primitive
// (the I/O profiler of Figure 4). The workload must succeed fault-free.
func Profile(w Workload, sig Signature) (int64, error) {
	return ProfileMounts(w, sig, nil)
}

// ProfileMounts is Profile restricted to the I/O routed to the given mount
// points: only primitive executions that reach one of the armed tiers are
// counted, so the injection target space matches exactly what ArmMounts can
// corrupt. Empty mounts profiles the whole file system.
func ProfileMounts(w Workload, sig Signature, mounts []string) (int64, error) {
	base, err := buildWorld(w)
	if err != nil {
		return 0, err
	}
	return profileWorld(base, w, sig, mounts)
}

// profileWorld runs the fault-free profiling pass on an already-built
// post-Setup world (a snapshot clone in campaign use).
func profileWorld(base vfs.FS, w Workload, sig Signature, mounts []string) (int64, error) {
	var counters []*vfs.CountingFS
	counted, err := interposeMounts(base, mounts, func(inner vfs.FS) vfs.FS {
		c := vfs.NewCountingFS(inner)
		counters = append(counters, c)
		return c
	})
	if err != nil {
		return 0, err
	}
	if err := runRecovering(w.Run, counted); err != nil {
		return 0, fmt.Errorf("core: fault-free profiling run failed: %w", err)
	}
	var total int64
	for _, c := range counters {
		total += c.Count(sig.Primitive)
	}
	return total, nil
}

// interposeMounts wraps the armed scope of the world with wrap: the whole
// file system when mounts is empty, or each named mount of a *vfs.MountFS
// world otherwise. In the mount case the returned FS is a shallow copy of
// the table sharing the same backends, so the caller's base remains a clean
// routing view onto the very same storage — setup and classification read
// and write the real state without passing through the interposition.
func interposeMounts(base vfs.FS, mounts []string, wrap func(vfs.FS) vfs.FS) (vfs.FS, error) {
	if len(mounts) == 0 {
		return wrap(base), nil
	}
	mt, ok := base.(*vfs.MountFS)
	if !ok {
		return nil, errors.New("core: ArmMounts requires a *vfs.MountFS world (set Workload.NewFS)")
	}
	armed := mt
	for _, dir := range mounts {
		var err error
		armed, err = armed.WithInterposed(dir, wrap)
		if err != nil {
			return nil, fmt.Errorf("core: arm mount %s: %w", dir, err)
		}
	}
	return armed, nil
}

// runRecovering invokes run and converts panics into errors, standing in
// for the process isolation a real injection campaign gets from running the
// application in a child process: a crash must not take the campaign down.
func runRecovering(run func(vfs.FS) error, fs vfs.FS) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: application panic: %v", r)
		}
	}()
	return run(fs)
}

// RunOnce performs a single fault-injection run with the given target
// instance, returning its record. Each run gets a fresh file system —
// matching the paper, which remounts FFISFS for every run.
func RunOnce(w Workload, sig Signature, target int64, rng *stats.RNG) (RunRecord, error) {
	return RunOnceMounts(w, sig, target, rng, nil)
}

// RunOnceMounts is RunOnce with the injector armed only on the I/O routed
// to the given mount points (empty = the whole file system). The workload
// runs on a view whose armed tiers are wrapped by the injector; outcome
// classification runs on the clean view of the same storage.
func RunOnceMounts(w Workload, sig Signature, target int64, rng *stats.RNG, mounts []string) (RunRecord, error) {
	base, err := buildWorld(w)
	if err != nil {
		return RunRecord{}, err
	}
	return runOnceWorld(base, w, sig, target, rng, mounts)
}

// runOnceWorld performs one injection run on an already-built pristine
// world: arm, run, classify on the clean view.
func runOnceWorld(base vfs.FS, w Workload, sig Signature, target int64, rng *stats.RNG, mounts []string) (RunRecord, error) {
	inj := NewInjector(sig, target, rng)
	armed, err := interposeMounts(base, mounts, inj.Wrap)
	if err != nil {
		return RunRecord{}, err
	}
	// Measure only the application's own I/O on the simulated clock: reset
	// before Run (excluding Setup and any profiling charges, and making COW
	// clones and fresh rebuilds indistinguishable), read before
	// classification touches the world.
	vfs.ResetSim(base)
	runErr := runRecovering(w.Run, armed)
	simNanos := int64(0)
	if elapsed, ok := vfs.SimElapsed(base); ok {
		simNanos = int64(elapsed)
	}
	outcome := classify.Crash
	if w.Classify != nil {
		outcome = w.Classify(base, runErr)
	} else if runErr == nil {
		outcome = classify.Benign
	}
	mut, fired := inj.Fired()
	return RunRecord{
		Target:   target,
		Outcome:  outcome,
		Mutation: mut,
		Fired:    fired,
		Shots:    inj.FiredShots(),
		RunErr:   runErr,
		SimNanos: simNanos,
	}, nil
}

// Campaign executes a full statistical fault-injection campaign: Setup runs
// once and is snapshotted, a profiling pass on a snapshot clone counts the
// target primitive, then cfg.Runs injection runs — each on its own cheap
// copy-on-write clone of the post-Setup world — draw uniformly random
// targets and are classified against the workload's own notion of the
// golden output.
func Campaign(cfg CampaignConfig, w Workload) (CampaignResult, error) {
	if cfg.Runs <= 0 {
		return CampaignResult{}, errors.New("core: campaign needs Runs > 0")
	}
	sig := cfg.Fault.Signature()
	if err := sig.Validate(); err != nil {
		return CampaignResult{}, err
	}
	snap, err := newSnapshot(w, cfg.FreshWorlds)
	if err != nil {
		return CampaignResult{}, err
	}
	world, err := snap.World()
	if err != nil {
		return CampaignResult{}, err
	}
	count, err := profileWorld(world, w, sig, cfg.ArmMounts)
	if err != nil {
		return CampaignResult{}, err
	}
	if count == 0 {
		return CampaignResult{}, ErrNoTargets
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	sem := make(chan struct{}, workers)
	return runInjections(cfg, w, snap, sig, count, sem, nil)
}

// runStream derives run idx's independent, reproducible RNG stream from the
// campaign seed. Both Campaign and Engine use it, so a cell produces the
// same per-run draws no matter which scheduler executes it or how wide the
// worker pool is.
func runStream(seed uint64, idx int) *stats.RNG {
	return stats.NewRNG(seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15)
}

// runInjections executes the campaign's injection runs (all of [0, Runs),
// or the RunFilter subset) against worlds served by snap, bounded by the
// semaphore sem — a campaign-private pool under Campaign, the grid-wide
// shared pool under Engine. progress (optional) receives the completed-run
// count as runs finish.
//
// With cfg.Stop set, dispatch is chunked at the rule's index barriers: the
// runner drains each chunk completely, evaluates the rule on the prefix
// tally (executed outcomes plus PriorOutcome for indices the RunFilter
// skipped), and stops dispatching once satisfied. The evaluated prefix is
// always a complete [0, barrier) — never a completion-order sample — so the
// stopping index depends only on (Seed, Runs, rule), not on Workers.
//
// Error semantics: a failing run (world build or arming failure — never the
// application's own error, which classification absorbs) does not poison
// its siblings. Every successful run is tallied, recorded, and delivered to
// the sink; the returned error reports the lowest failing run index. The
// result's Tally therefore always covers exactly res.Records (plus nothing
// else), never a silent prefix of them.
func runInjections(cfg CampaignConfig, w Workload, snap *WorldSnapshot, sig Signature, count int64, sem chan struct{}, progress func(done int)) (CampaignResult, error) {
	res := CampaignResult{Workload: w.Name, Signature: sig, ProfileCount: count}
	rule, err := cfg.NormalizedStop()
	if err != nil {
		return res, err
	}
	if rule != nil && cfg.RunFilter != nil && cfg.PriorOutcome == nil {
		return res, errors.New("core: adaptive stopping under a RunFilter needs PriorOutcome for the skipped indices (shards cannot run adaptively)")
	}
	if cfg.Sink != nil {
		if err := cfg.Sink.BeginCampaign(CampaignMeta{
			Workload: w.Name, Signature: sig,
			ProfileCount: count, Runs: cfg.Runs, Seed: cfg.Seed,
			Stop: rule,
		}); err != nil {
			return res, fmt.Errorf("core: record sink: %w", err)
		}
	}
	// In streaming mode (DiscardRecords) nothing per-index is retained:
	// the tally accumulates online and memory stays O(workers).
	var records []RunRecord
	var ran []bool
	if !cfg.DiscardRecords {
		records = make([]RunRecord, cfg.Runs)
		ran = make([]bool, cfg.Runs)
	}
	var (
		wg sync.WaitGroup
		// mu guards the shared accumulators and serializes sink and
		// progress delivery, so Done counts reach the callback in
		// monotone order and the sink never sees overlapping calls.
		mu       sync.Mutex
		done     int
		tally    classify.Tally
		simTotal int64
		failIdx  = -1
		failErr  error
		sinkErr  error
		// priorTally accumulates the persisted outcomes of skipped indices
		// (adaptive resume); touched only from the dispatch loop, read only
		// after its chunk has drained.
		priorTally classify.Tally
		priorErr   error
		// aborted latches the Abort hook's decision; set only from the
		// dispatch loop, read only after the chunk has drained.
		aborted bool
	)
	// dispatch launches runs for indices [lo, hi) and waits for the chunk to
	// drain, so the caller observes a complete prefix.
	dispatch := func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			if cfg.Abort != nil && cfg.Abort() {
				aborted = true
				break
			}
			if cfg.RunFilter != nil && !cfg.RunFilter(idx) {
				if rule != nil && priorErr == nil {
					if o, ok := cfg.PriorOutcome(idx); ok {
						priorTally.Add(o)
					} else {
						priorErr = fmt.Errorf("core: adaptive resume: no persisted outcome for skipped run %d", idx)
					}
				}
				continue
			}
			idx := idx
			sem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				rng := runStream(cfg.Seed, idx)
				target := rng.Int64n(count)
				rec, err := func() (RunRecord, error) {
					base, err := snap.World()
					if err != nil {
						return RunRecord{}, err
					}
					return runOnceWorld(base, w, sig, target, rng, cfg.ArmMounts)
				}()
				rec.Index = idx
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if failIdx < 0 || idx < failIdx {
						failIdx, failErr = idx, err
					}
				} else {
					tally.Add(rec.Outcome)
					simTotal += rec.SimNanos
					if records != nil {
						records[idx], ran[idx] = rec, true
					}
					if cfg.Sink != nil && sinkErr == nil {
						// The sink goes sterile after its first error: a
						// persistent store that failed mid-stream must not
						// receive further records it could misorder.
						sinkErr = cfg.Sink.Record(rec)
					}
				}
				done++
				if progress != nil {
					progress(done)
				}
			}()
		}
		wg.Wait()
	}
	if rule == nil {
		dispatch(0, cfg.Runs)
	} else {
		for next := 0; ; {
			b := rule.NextBarrier(next)
			dispatch(next, b)
			next = b
			if failErr != nil || sinkErr != nil || priorErr != nil || aborted {
				break
			}
			res.StopIndex = b
			if b >= rule.MaxRuns {
				break
			}
			// The complete prefix [0, b): executed outcomes plus the
			// persisted outcomes of skipped indices. wg has drained, so
			// tally has no concurrent writers.
			outcomes := classify.Outcomes()
			counts := make([]int, len(outcomes))
			trials := 0
			for i, o := range outcomes {
				counts[i] = tally.Count(o) + priorTally.Count(o)
				trials += counts[i]
			}
			if rule.Satisfied(counts, trials) {
				break
			}
		}
		// Persist the decision: a sink that stores records by index needs
		// the stop index to declare the stream complete.
		if sr, ok := cfg.Sink.(StopRecorder); ok && failErr == nil && sinkErr == nil && priorErr == nil && !aborted {
			sinkErr = sr.RecordStop(res.StopIndex)
		}
	}

	res.Tally = tally
	res.SimNanos = simTotal
	if records != nil {
		for idx, ok := range ran {
			if ok {
				res.Records = append(res.Records, records[idx])
			}
		}
	}
	switch {
	case failErr != nil:
		return res, fmt.Errorf("core: run %d: %w", failIdx, failErr)
	case sinkErr != nil:
		return res, fmt.Errorf("core: record sink: %w", sinkErr)
	case priorErr != nil:
		return res, priorErr
	case aborted:
		return res, ErrAborted
	}
	return res, nil
}

// GoldenSnapshot captures the bytes of every file under root after a
// fault-free run; classifiers use it for the paper's "bit-wise identical"
// benign test. The snapshot is taken on the workload's own world (NewFS),
// so tiered campaigns compare against a golden run on the same mount
// layout.
func GoldenSnapshot(w Workload, root string) (map[string][]byte, error) {
	base, err := buildWorld(w)
	if err != nil {
		return nil, err
	}
	return goldenOnWorld(base, w, root)
}

// goldenOnWorld runs the workload fault-free on an already-built pristine
// world (a snapshot clone under the engine) and snapshots root.
func goldenOnWorld(base vfs.FS, w Workload, root string) (map[string][]byte, error) {
	if err := runRecovering(w.Run, base); err != nil {
		return nil, fmt.Errorf("core: golden run failed: %w", err)
	}
	return Snapshot(base, root)
}

// Snapshot reads every file under root into a path→content map.
func Snapshot(fs vfs.FS, root string) (map[string][]byte, error) {
	out := map[string][]byte{}
	err := vfs.Walk(fs, root, func(p string, info vfs.FileInfo) error {
		data, err := vfs.ReadFile(fs, p)
		if err != nil {
			return err
		}
		out[p] = data
		return nil
	})
	return out, err
}
