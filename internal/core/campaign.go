package core

import (
	"errors"
	"fmt"
	"runtime"

	"ffis/internal/classify"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Workload packages an application for fault-injection campaigns. The
// contract mirrors the paper's workflow (Figure 4): Setup prepares input
// files fault-free, Run executes the application whose I/O is interposed
// on, and Classify inspects the outputs (plus the run error) to produce an
// outcome relative to a golden run.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Setup populates input files. It runs on the bare file system and is
	// never subject to injection (faults target the application's own
	// I/O, not the pre-existing inputs). Optional.
	Setup func(fs vfs.FS) error
	// Run executes the application under test. All I/O it performs flows
	// through the (possibly armed) file system it is handed.
	Run func(fs vfs.FS) error
	// Classify decides the outcome of a finished run. runErr carries the
	// application error or recovered panic, nil for a clean exit. It runs
	// on the bare file system.
	Classify func(fs vfs.FS, runErr error) classify.Outcome
	// NewFS constructs the storage world for one run (golden, profiling,
	// and every injection run alike — each gets a fresh world, as the
	// paper remounts FFISFS per run). Nil selects a bare MemFS. Tiered
	// campaigns return a *vfs.MountFS here so that CampaignConfig.ArmMounts
	// can aim the injector at a single storage tier.
	NewFS func() (vfs.FS, error)
}

// newWorld builds the workload's file-system world for one run.
func newWorld(w Workload) (vfs.FS, error) {
	if w.NewFS == nil {
		return vfs.NewMemFS(), nil
	}
	return w.NewFS()
}

// CampaignConfig controls a statistical fault-injection campaign.
type CampaignConfig struct {
	// Fault selects the fault model/primitive/feature to inject.
	Fault Config
	// Runs is the number of fault-injection runs (the paper uses 1,000
	// per cell).
	Runs int
	// Seed makes the campaign reproducible; run i derives its own stream.
	Seed uint64
	// Workers bounds parallel runs; <= 0 selects GOMAXPROCS.
	Workers int
	// ArmMounts restricts injection (and the profiling count) to the I/O
	// routed to these mount points of the workload's *vfs.MountFS world:
	// the fault lives in one storage tier, every other tier stays clean.
	// Requires Workload.NewFS to return a *vfs.MountFS. Empty arms the
	// whole file system, the paper's flat single-device setup.
	ArmMounts []string
	// FreshWorlds forces a full world rebuild (NewFS + Setup) for every run
	// instead of handing each run a copy-on-write clone of a single
	// post-Setup snapshot — the paper's literal remount-per-run procedure.
	// Results are identical either way (clones are bit-identical to fresh
	// builds); this is the reference path equivalence tests and the
	// engine-speedup benchmarks compare against.
	FreshWorlds bool
	// Sink, when non-nil, receives every finished run record as it
	// completes: BeginCampaign once after profiling succeeds, then one
	// Record call per successful run. Delivery is serialized (calls never
	// overlap) but arrives in completion order, not index order — a
	// persistent sink that needs index order (internal/results) reorders
	// internally. A sink error aborts record delivery and fails the
	// campaign; records already delivered stay delivered.
	Sink RecordSink
	// DiscardRecords drops the per-run Records slice from the
	// CampaignResult — the Tally still covers every run — so large grids
	// that stream records to a Sink (or only need rates) run in O(workers)
	// memory instead of O(Runs).
	DiscardRecords bool
	// RunFilter, when non-nil, selects which run indices in [0, Runs)
	// execute; the rest are skipped entirely. Because each run's RNG
	// stream derives purely from (Seed, index) via runStream, the executed
	// subset produces records bit-identical to the same indices of an
	// unfiltered campaign — this is what makes persisted campaigns
	// resumable (skip already-stored indices) and shardable (each shard
	// owns index % n == i) with no statistical caveats. The Tally and
	// Records of the result cover only the executed indices.
	RunFilter func(idx int) bool
	// Stop enables adaptive, confidence-driven stopping: runs dispatch in
	// chunks up to the rule's fixed index barriers, and at each barrier the
	// complete outcome tally of the prefix [0, barrier) decides whether the
	// campaign stops there. Runs is the fixed budget the rule is normalized
	// against (its MaxRuns cap). Because barriers are index-determined and
	// each run's outcome derives purely from (Seed, index), the stopping
	// index is independent of Workers and scheduling. Nil keeps the classic
	// fixed-budget campaign, bit for bit.
	Stop *stats.StopRule
	// PriorOutcome reports the already-persisted outcome of a run index the
	// RunFilter skips. Adaptive campaigns require it whenever RunFilter is
	// set: a barrier decision needs the complete prefix tally, so skipped
	// indices must contribute their stored outcomes (resume); a shard,
	// which cannot know its siblings' outcomes, cannot run adaptively.
	PriorOutcome func(idx int) (classify.Outcome, bool)
	// Abort, when non-nil, is polled before each run dispatch; once it
	// returns true the campaign stops launching new runs, drains the ones
	// in flight, and fails with ErrAborted. Records already delivered to
	// the Sink stay delivered, and because delivery-side reordering only
	// ever persists in-order prefixes, an aborted campaign leaves behind
	// exactly the resumable prefix a killed process would. A distributed
	// worker sets this to its lease-revocation check so compute stops as
	// soon as the coordinator has re-queued the spec elsewhere.
	Abort func() bool
}

// ErrAborted reports a campaign stopped by its CampaignConfig.Abort hook:
// not a failure of any run, but an external decision (typically a lapsed
// work lease) that the remaining runs are no longer this process's to
// execute. Test with errors.Is.
var ErrAborted = errors.New("core: campaign aborted")

// LeaseFilter returns the RunFilter of a work lease over a partially
// persisted spec: only indices at or after start execute, the resume-at-
// first-missing-index discipline of the distributed coordinator. Because
// run streams derive purely from (Seed, index), the executed suffix is
// bit-identical to the same indices of an uninterrupted campaign — a dead
// worker's persisted prefix plus a successor's leased suffix reassemble
// the exact single-machine record file.
func LeaseFilter(start int) func(idx int) bool {
	return func(idx int) bool { return idx >= start }
}

// NormalizedStop resolves the campaign's adaptive stopping rule against its
// run budget: every field concrete, as persisted in record headers. Nil
// when the campaign is fixed-budget.
func (cfg CampaignConfig) NormalizedStop() (*stats.StopRule, error) {
	if cfg.Stop == nil {
		return nil, nil
	}
	r, err := cfg.Stop.Normalize(cfg.Runs)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// execTotal counts the run indices the campaign will actually execute
// under its RunFilter.
func (cfg CampaignConfig) execTotal() int {
	if cfg.RunFilter == nil {
		return cfg.Runs
	}
	n := 0
	for idx := 0; idx < cfg.Runs; idx++ {
		if cfg.RunFilter(idx) {
			n++
		}
	}
	return n
}

// CampaignMeta identifies the campaign a record stream belongs to: what a
// persistent sink needs to label (and, on resume, re-validate) its stream.
type CampaignMeta struct {
	Workload     string
	Signature    Signature
	ProfileCount int64
	Runs         int
	Seed         uint64
	// Stop is the normalized adaptive stopping rule, nil for fixed-budget
	// campaigns. It is part of the stream's identity: records produced
	// under a different rule stop at a different index.
	Stop *stats.StopRule
}

// RecordSink streams finished run records out of a campaign while it runs,
// so results reach durable storage before the process exits and the
// campaign need not retain them in memory. Implementations never see
// overlapping calls.
type RecordSink interface {
	// BeginCampaign is invoked once per campaign, after the profiling pass
	// succeeds and before any Record call. A resuming sink validates meta
	// against its persisted header here: a mismatched profile count or
	// seed means the stored records cannot belong to this campaign.
	BeginCampaign(meta CampaignMeta) error
	// Record receives one successfully completed run.
	Record(RunRecord) error
}

// StopRecorder is the optional RecordSink extension for adaptive campaigns:
// after the stopping rule decides, the campaign hands the sink the stop
// index so it can persist the decision with the records (internal/results
// rewrites its header line on finalize). A sink without this method simply
// never learns the stop index — the records themselves are unaffected.
type StopRecorder interface {
	RecordStop(stopIndex int) error
}

// RunRecord captures a single fault-injection run.
type RunRecord struct {
	Index    int
	Target   int64 // dynamic instance of the primitive that was corrupted
	Outcome  classify.Outcome
	Mutation Mutation // the first (primary) mutation of the event
	Fired    bool     // false when the target instance was never reached
	Shots    int      // shots fired; 1 for the single-shot family, 0 when never fired
	RunErr   error    // the application error, if any
	// SimNanos is the simulated I/O time the run charged against its
	// world's latency-modeled backends (vfs.SimClocked), zero on worlds
	// with no latency modeling. The clock is reset immediately before the
	// application runs, so setup/profiling I/O is excluded and COW-cloned
	// and rebuilt worlds report identical times.
	SimNanos int64
}

// CampaignResult aggregates a finished campaign.
type CampaignResult struct {
	Workload  string
	Signature Signature
	// ProfileCount is the dynamic count of the target primitive measured
	// by the fault-free profiling run.
	ProfileCount int64
	Tally        classify.Tally
	Records      []RunRecord
	// StopIndex is the adaptive stopping decision: run indices [0,
	// StopIndex) exist and nothing after them does. 0 means the campaign
	// ran its fixed budget (no stopping rule); an adaptive campaign that
	// reaches its cap reports StopIndex == Runs, keeping "adaptive, capped"
	// distinguishable from "fixed" in persisted headers.
	StopIndex int
	// SimNanos is the total simulated I/O time over all executed runs,
	// zero when the world has no latency-modeled backend. Deterministic:
	// per-run charges are interleaving-independent sums, so the total
	// depends only on (Seed, Runs), never on Workers.
	SimNanos int64
}

// Cell renders the result as a labelled classify table cell.
func (r CampaignResult) Cell() classify.Cell {
	return classify.Cell{
		Label: fmt.Sprintf("%s/%s", r.Workload, r.Signature.Model.Short()),
		Tally: r.Tally,
	}
}

// ErrNoTargets is returned when profiling finds zero executions of the
// target primitive, i.e. the fault has nowhere to land.
var ErrNoTargets = errors.New("core: target primitive never executes in workload")

// Profile runs the workload fault-free on a counting file system and
// returns the dynamic execution count of the signature's target primitive
// (the I/O profiler of Figure 4). The workload must succeed fault-free.
func Profile(w Workload, sig Signature) (int64, error) {
	return ProfileMounts(w, sig, nil)
}

// ProfileMounts is Profile restricted to the I/O routed to the given mount
// points: only primitive executions that reach one of the armed tiers are
// counted, so the injection target space matches exactly what ArmMounts can
// corrupt. Empty mounts profiles the whole file system.
func ProfileMounts(w Workload, sig Signature, mounts []string) (int64, error) {
	base, err := buildWorld(w)
	if err != nil {
		return 0, err
	}
	return profileWorld(base, w, sig, mounts)
}

// profileWorld runs the fault-free profiling pass on an already-built
// post-Setup world (a snapshot clone in campaign use).
func profileWorld(base vfs.FS, w Workload, sig Signature, mounts []string) (int64, error) {
	var counters []*vfs.CountingFS
	counted, err := interposeMounts(base, mounts, func(inner vfs.FS) vfs.FS {
		c := vfs.NewCountingFS(inner)
		counters = append(counters, c)
		return c
	})
	if err != nil {
		return 0, err
	}
	if err := runRecovering(w.Run, counted); err != nil {
		return 0, fmt.Errorf("core: fault-free profiling run failed: %w", err)
	}
	var total int64
	for _, c := range counters {
		total += c.Count(sig.Primitive)
	}
	return total, nil
}

// interposeMounts wraps the armed scope of the world with wrap: the whole
// file system when mounts is empty, or each named mount of a *vfs.MountFS
// world otherwise. In the mount case the returned FS is a shallow copy of
// the table sharing the same backends, so the caller's base remains a clean
// routing view onto the very same storage — setup and classification read
// and write the real state without passing through the interposition.
func interposeMounts(base vfs.FS, mounts []string, wrap func(vfs.FS) vfs.FS) (vfs.FS, error) {
	if len(mounts) == 0 {
		return wrap(base), nil
	}
	mt, ok := base.(*vfs.MountFS)
	if !ok {
		return nil, errors.New("core: ArmMounts requires a *vfs.MountFS world (set Workload.NewFS)")
	}
	armed := mt
	for _, dir := range mounts {
		var err error
		armed, err = armed.WithInterposed(dir, wrap)
		if err != nil {
			return nil, fmt.Errorf("core: arm mount %s: %w", dir, err)
		}
	}
	return armed, nil
}

// runRecovering invokes run and converts panics into errors, standing in
// for the process isolation a real injection campaign gets from running the
// application in a child process: a crash must not take the campaign down.
func runRecovering(run func(vfs.FS) error, fs vfs.FS) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: application panic: %v", r)
		}
	}()
	return run(fs)
}

// Campaign executes a full statistical fault-injection campaign: Setup runs
// once and is snapshotted, a profiling pass on a snapshot clone counts the
// target primitive, then cfg.Runs injection runs — each on its own cheap
// copy-on-write clone of the post-Setup world — draw uniformly random
// targets and are classified against the workload's own notion of the
// golden output.
func Campaign(cfg CampaignConfig, w Workload) (CampaignResult, error) {
	if cfg.Runs <= 0 {
		return CampaignResult{}, errors.New("core: campaign needs Runs > 0")
	}
	sig := cfg.Fault.Signature()
	if err := sig.Validate(); err != nil {
		return CampaignResult{}, err
	}
	snap, err := newSnapshot(w, cfg.FreshWorlds)
	if err != nil {
		return CampaignResult{}, err
	}
	world, err := snap.World()
	if err != nil {
		return CampaignResult{}, err
	}
	count, err := profileWorld(world, w, sig, cfg.ArmMounts)
	if err != nil {
		return CampaignResult{}, err
	}
	if count == 0 {
		return CampaignResult{}, ErrNoTargets
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	r := &Runner{
		Workload:     w,
		Config:       cfg,
		Snapshot:     snap,
		ProfileCount: count,
		Pool:         make(chan struct{}, workers),
	}
	return r.Run()
}

// runStream derives run idx's independent, reproducible RNG stream from the
// campaign seed. Both Campaign and Engine use it, so a cell produces the
// same per-run draws no matter which scheduler executes it or how wide the
// worker pool is.
func runStream(seed uint64, idx int) *stats.RNG {
	return stats.NewRNG(seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15)
}

// GoldenSnapshot captures the bytes of every file under root after a
// fault-free run; classifiers use it for the paper's "bit-wise identical"
// benign test. The snapshot is taken on the workload's own world (NewFS),
// so tiered campaigns compare against a golden run on the same mount
// layout.
func GoldenSnapshot(w Workload, root string) (map[string][]byte, error) {
	base, err := buildWorld(w)
	if err != nil {
		return nil, err
	}
	return goldenOnWorld(base, w, root)
}

// goldenOnWorld runs the workload fault-free on an already-built pristine
// world (a snapshot clone under the engine) and snapshots root.
func goldenOnWorld(base vfs.FS, w Workload, root string) (map[string][]byte, error) {
	if err := runRecovering(w.Run, base); err != nil {
		return nil, fmt.Errorf("core: golden run failed: %w", err)
	}
	return Snapshot(base, root)
}

// Snapshot reads every file under root into a path→content map.
func Snapshot(fs vfs.FS, root string) (map[string][]byte, error) {
	out := map[string][]byte{}
	err := vfs.Walk(fs, root, func(p string, info vfs.FileInfo) error {
		data, err := vfs.ReadFile(fs, p)
		if err != nil {
			return err
		}
		out[p] = data
		return nil
	})
	return out, err
}
