package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// This file defines the contract between the injector and a fault model's
// hooks: the op structs describe the one claimed primitive instance, the
// action structs tell the injector how to complete it, and BaseModel
// supplies pass-through hooks so a model implements only the injection
// sites it hosts.

// WriteOp describes one claimed write instance (sequential Write or
// positional WriteAt — the paper funnels both into FFIS_write).
type WriteOp struct {
	// File is the underlying, uninstrumented handle of the file being
	// written: models may read the device's previous content through it
	// (shorn writes) or persist bytes elsewhere themselves (misdirected
	// writes) without re-entering the injector.
	File vfs.File
	// Path names the file the primitive targeted.
	Path string
	// Buf is the application's write buffer; hooks must not modify it in
	// place (return a mutated copy in WriteAction.Buf instead).
	Buf []byte
	// Off is the device offset the write lands at.
	Off int64
}

// WriteAction tells the injector how to complete an intercepted write.
type WriteAction struct {
	// Buf is the buffer actually handed to the device (ignored when Skip
	// or Err).
	Buf []byte
	// Skip suppresses the device write entirely while acknowledging full
	// success to the application — the sequential offset still advances,
	// as a device that lied about persisting would leave it.
	Skip bool
	// Err fails the write: nothing reaches the device and the application
	// sees this error with zero bytes written (device-failure models).
	Err error
}

// ReadOp describes one claimed read instance (sequential Read or positional
// ReadAt). The hook owns the whole read: nothing has touched the device
// when it runs.
type ReadOp struct {
	// File is the underlying handle of the file being read.
	File vfs.File
	// FS is the uninstrumented view at the same path-translation layer:
	// models that corrupt at-rest bytes open a writable side handle on it
	// without re-entering the injector.
	FS vfs.FS
	// Path names the file the primitive targeted.
	Path string
	// Buf is the application's destination buffer.
	Buf []byte
	// Off is the device offset of the read, or -1 when unknown; OffErr
	// then carries why (a sequential handle whose position query failed).
	Off    int64
	OffErr error
	// Do performs the underlying device read into p at this op's position
	// (sequential or positional, matching the intercepted call). Hooks
	// that model delivery failure never invoke it; hooks that shorten the
	// read pass a prefix of Buf.
	Do func(p []byte) (int, error)
}

// TruncateOp describes one claimed truncate instance; the requested size
// plays the role of the write buffer.
type TruncateOp struct {
	Path string
	Size int64
}

// TruncateAction tells the injector how to complete an intercepted
// truncate.
type TruncateAction struct {
	// Size is the (possibly corrupted) size actually applied.
	Size int64
	// Drop suppresses the truncate entirely while acknowledging success.
	Drop bool
}

// MetaOp describes one claimed metadata instance: a mknod or chmod call
// (per Primitive) whose mode/dev arguments are the buffer.
type MetaOp struct {
	Primitive vfs.Primitive
	Path      string
	Mode      uint32
	Dev       uint64
}

// MetaAction tells the injector how to complete an intercepted metadata
// call.
type MetaAction struct {
	Mode uint32
	Dev  uint64
	// Drop suppresses the call entirely while acknowledging success.
	Drop bool
}

// BaseModel provides pass-through implementations of every hook, so a
// model embeds it and overrides only the injection sites named in its
// Hosts() list. A pass-through hook performs the primitive unchanged and
// records nothing — reaching one at runtime means Hosts() promised a site
// the model never implemented, which the registry conformance suite flags.
type BaseModel struct{}

// MutateWrite passes the write through unchanged.
func (BaseModel) MutateWrite(env Env, op WriteOp) WriteAction {
	return WriteAction{Buf: op.Buf}
}

// MutateRead performs the underlying read unchanged.
func (BaseModel) MutateRead(env Env, op ReadOp) (int, error) {
	return op.Do(op.Buf)
}

// MutateTruncate applies the requested size unchanged.
func (BaseModel) MutateTruncate(env Env, op TruncateOp) TruncateAction {
	return TruncateAction{Size: op.Size}
}

// MutateMeta applies the metadata arguments unchanged.
func (BaseModel) MutateMeta(env Env, op MetaOp) MetaAction {
	return MetaAction{Mode: op.Mode, Dev: op.Dev}
}

// RenderMutation formats a mutation generically from the fixed fields plus
// the model-specific Detail, so a model without bespoke rendering still
// logs readably.
func (BaseModel) RenderMutation(m Mutation) string {
	name := "mutation"
	if m.Model != nil {
		name = m.Model.Name()
	}
	line := fmt.Sprintf("%s %s off=%d len=%d", name, m.Path, m.Offset, m.Length)
	if m.Detail != "" {
		line += " " + m.Detail
	}
	return line
}
