// Package core implements FFIS itself: the fault models of Table I, fault
// signatures, the I/O profiler, the fault injector that corrupts exactly one
// dynamic instance of a file-system primitive, and the campaign runner that
// repeats injections until statistical significance.
//
// The package mirrors the three components of Figure 4 in the paper:
//
//   - Fault generator — Config.Signature() turns a user configuration into a
//     fault signature (fault model + target primitive + model feature).
//   - I/O profiler — Profile() executes the workload fault-free on a
//     CountingFS and reports the dynamic count of the target primitive.
//   - Fault injector — NewInjector()/InjectorFS corrupt the randomly chosen
//     instance; Campaign() loops runs and classifies outcomes.
//
// Fault models are an open vocabulary, as device studies keep surfacing new
// manifestations: each model is a self-contained Model implementation
// registered with Register, and the injector, campaign drivers, CLI flags,
// and experiment grids reach every registered model through the registry
// alone — adding a model touches no dispatch code.
//
// Beyond the paper's flat single-device setup, campaigns can route faults
// by storage tier: a Workload whose NewFS returns a *vfs.MountFS world can
// be armed on a subset of its mounts via CampaignConfig.ArmMounts, in which
// case ProfileMounts counts — and the injector corrupts — only the I/O
// routed to those mounts. All other tiers stay clean, and outcome
// classification always reads through the unarmed view of the same storage.
package core

import (
	"fmt"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Model is one SSD partial-failure manifestation (Table I and its
// extensions): a self-contained fault-model implementation. Identity comes
// from Name/Short, the hostable surface from Hosts, and behavior from the
// Mutate* hooks the injector calls when its single armed shot lands on an
// instance of a hosted primitive. Implementations embed BaseModel to
// inherit pass-through hooks and override only the sites they host; a
// Register call makes the model reachable by every campaign driver —
// ParseModel-based CLI flags, experiment grids, examples — with no further
// wiring.
//
// Hooks run after the injector has claimed its single shot, so each hook
// fires at most once per campaign run. A hook is responsible for recording
// what it did via Env.Record; a fired-but-unrecorded shot makes the run
// tally as never injected, which the registry conformance suite treats as
// a model bug.
type Model interface {
	// Name is the stable long identifier ("bit-flip"): the ParseModel key,
	// the report label, and the JSON-export value.
	Name() string
	// Short is the two-letter code used in figure and table headings
	// ("BF").
	Short() string
	// Hosts lists the file-system primitives that can host the fault, the
	// Table I "affected FUSE primitives" column. Hosts()[0] is the default
	// primitive a Config aims at when its Primitive field is unset;
	// Signature.Validate rejects any primitive outside the list.
	Hosts() []vfs.Primitive
	// Describe is the Table I "features" column: one line on what the
	// model does to the victim primitive instance.
	Describe() string

	// MutateWrite corrupts a claimed write instance (Figure 3a: the
	// (buffer, size, offset) triple of FFIS_write). It must Record the
	// mutation and return how the injector completes the write.
	MutateWrite(env Env, op WriteOp) WriteAction
	// MutateRead serves a claimed read instance. The hook owns the whole
	// read: it decides whether the underlying device read (op.Do) runs at
	// all, corrupts the delivered bytes or the at-rest media, Records the
	// mutation, and returns what the application observes.
	MutateRead(env Env, op ReadOp) (int, error)
	// MutateTruncate corrupts a claimed truncate instance, treating the
	// requested size as the write buffer.
	MutateTruncate(env Env, op TruncateOp) TruncateAction
	// MutateMeta corrupts a claimed metadata instance (mknod or chmod,
	// per op.Primitive), treating the mode/dev arguments as the buffer.
	MutateMeta(env Env, op MetaOp) MetaAction

	// RenderMutation formats one of this model's mutation records for
	// logs; Mutation.String delegates here, so new models get readable
	// mutation lines without any central rendering switch.
	RenderMutation(m Mutation) string
}

// IsRead reports whether the model hosts on the read path: its default
// target primitive (Hosts()[0]) is read rather than write, so campaigns aim
// it at data consumption instead of production.
func IsRead(m Model) bool {
	hosts := m.Hosts()
	return len(hosts) > 0 && hosts[0] == vfs.PrimRead
}

// MultiShot is the optional interface of correlated fault models: models
// whose one physical fault event manifests on more than one primitive
// instance (firmware misdirecting every Nth write, a device dropping off
// the bus). The injector still draws a single uniform target instance; a
// MultiShot model then decides which instances at or after the target
// belong to the event, bounded by a shot budget.
//
// Single-manifestation models simply don't implement this: they keep the
// exact claim sequence (and tallies) of the single-shot injector.
type MultiShot interface {
	// Claims reports whether the rel-th instance at or after the drawn
	// target (rel 0 is the target itself) is one of the model's shots. It
	// must be a pure function of (feature, rel) — campaign determinism
	// depends on it.
	Claims(f Feature, rel int64) bool
	// DefaultShots is the model's shot budget when Signature.Shots is
	// unset. It must be >= 1.
	DefaultShots(f Feature) int
}

// Feature carries the per-model tunables of a fault signature. Zero values
// select the paper's defaults via normalize().
type Feature struct {
	// FlipBits is the number of consecutive bits flipped by BitFlip.
	// The paper's default is 2 (footnote 3 also evaluates 4).
	FlipBits int
	// ShornKeepNum/ShornKeepDen give the fraction of each block persisted
	// by ShornWrite: 3/8 or 7/8 in Table I. Default 7/8.
	ShornKeepNum int
	ShornKeepDen int
	// SectorSize is the persistence granularity of the device (512 B).
	SectorSize int
	// BlockSize is the device program block (4 KiB).
	BlockSize int
	// BurstSectors is the number of adjacent sectors BurstCorruption mangles
	// in one event. 0 selects the model default (4). Deliberately not filled
	// by normalize(): the correlated-model tunables stay zero-valued unless
	// set, so legacy signatures (and their persisted headers) are
	// bit-identical to the pre-multi-shot era.
	BurstSectors int
	// MisdirectEvery is the write-instance stride of RepeatedMisdirection:
	// the target and every MisdirectEvery-th write after it are misplaced.
	// 0 selects the model default (4). Not filled by normalize(), as above.
	MisdirectEvery int
}

// normalize fills in the paper defaults for any unset field.
func (f Feature) normalize() Feature {
	if f.FlipBits <= 0 {
		f.FlipBits = 2
	}
	if f.ShornKeepDen <= 0 {
		f.ShornKeepDen = 8
	}
	if f.ShornKeepNum <= 0 {
		f.ShornKeepNum = 7
	}
	if f.ShornKeepNum >= f.ShornKeepDen {
		f.ShornKeepNum = f.ShornKeepDen - 1
	}
	if f.SectorSize <= 0 {
		f.SectorSize = 512
	}
	if f.BlockSize <= 0 {
		f.BlockSize = 4096
	}
	return f
}

// Signature is the fault signature produced by the fault generator: the
// fault model, the file-system primitive hosting the fault, and the model
// feature (Figure 4, "Generating fault signature").
type Signature struct {
	Model     Model
	Primitive vfs.Primitive
	Feature   Feature
	// Shots bounds how many primitive instances one injection run may
	// corrupt. 0 keeps the model's own default budget — 1 for every
	// single-manifestation model, the MultiShot model's DefaultShots
	// otherwise — and is deliberately left raw rather than normalized to 1
	// so legacy signatures (and the record headers derived from them)
	// serialize exactly as the single-shot era wrote them.
	Shots int
}

// ShotBudget resolves the signature's effective shot budget.
func (s Signature) ShotBudget() int {
	if s.Shots > 0 {
		return s.Shots
	}
	if ms, ok := s.Model.(MultiShot); ok {
		if n := ms.DefaultShots(s.Feature); n > 0 {
			return n
		}
	}
	return 1
}

func (s Signature) String() string {
	name := "(no model)"
	if s.Model != nil {
		name = s.Model.Name()
	}
	return fmt.Sprintf("%s@%s", name, s.Primitive)
}

// Validate reports whether the injector can actually host this signature:
// the primitive must be in the model's Hosts() set. Campaign and Engine
// call it before profiling, so a signature the injector would silently pass
// through (e.g. shorn-write@truncate, or any model on stat) is a
// configuration error instead of a campaign that profiles a nonzero count
// and then tallies 100% benign.
func (s Signature) Validate() error {
	if s.Model == nil {
		return fmt.Errorf("core: signature has no fault model (use ParseModel or a registered Model)")
	}
	if s.Shots < 0 {
		return fmt.Errorf("core: signature shot budget %d is negative", s.Shots)
	}
	for _, p := range s.Model.Hosts() {
		if p == s.Primitive {
			return nil
		}
	}
	return fmt.Errorf("core: injector cannot host %s: model %s hosts only %v",
		s, s.Model.Name(), s.Model.Hosts())
}

// Config is the user configuration the fault generator consumes.
type Config struct {
	Model Model
	// Primitive defaults to the model's own default target — Hosts()[0]:
	// write for the write-path family (Section IV-B), read for the
	// read-path family.
	Primitive vfs.Primitive
	Feature   Feature
	// Shots overrides the per-run shot budget; 0 keeps the model default.
	Shots int
}

// Signature generates the fault signature from the configuration, applying
// the paper's defaults for anything unspecified.
func (c Config) Signature() Signature {
	prim := c.Primitive
	if prim == "" && c.Model != nil {
		if hosts := c.Model.Hosts(); len(hosts) > 0 {
			prim = hosts[0]
		}
	}
	return Signature{Model: c.Model, Primitive: prim, Feature: c.Feature.normalize(), Shots: c.Shots}
}

// Mutation describes what a fault model did to one intercepted primitive
// instance, for logging and for tests that assert the corruption shape.
// The fixed fields cover the built-in vocabulary; models with extra state
// to report put it in Detail, which the generic rendering appends.
type Mutation struct {
	Model   Model
	Path    string // file the primitive targeted
	Offset  int64  // file offset of the write/read; requested size for truncate
	Length  int    // length of the original buffer
	BitPos  int    // bit-flip models: first flipped bit index within the buffer (-1: nothing to flip)
	Kept    int    // bytes actually persisted (ShornWrite) or delivered (ShortRead)
	Dropped bool   // DroppedWrite: write/truncate suppressed
	Sectors int    // ShornWrite: sectors suppressed
	// NewSize is the corrupted size a BitFlip@truncate actually applied.
	NewSize int64
	// Unreadable marks an UnreadableSector fault: the read failed with
	// vfs.ErrUnreadable and delivered no data.
	Unreadable bool
	// Latent marks a LatentCorruption fault: the flip was written back to
	// the at-rest bytes, so it outlives this read.
	Latent bool
	// Detail carries model-specific context with no dedicated field above
	// (e.g. where a misdirected write actually landed).
	Detail string
}

// String delegates rendering to the model that produced the mutation, so
// every registered model — including ones this package has never heard of —
// yields a readable log line.
func (m Mutation) String() string {
	if m.Model == nil {
		return fmt.Sprintf("mutation(no model) %s", m.Path)
	}
	return m.Model.RenderMutation(m)
}

// mutateBitFlip returns a copy of buf with feature.FlipBits consecutive bits
// flipped starting at a random bit position. Flipping may straddle byte
// boundaries; positions are uniform over the whole buffer. The returned
// mutation has only BitPos and Length set; the calling hook stamps Model,
// Path, and Offset.
func mutateBitFlip(buf []byte, f Feature, rng *stats.RNG) ([]byte, Mutation) {
	out := append([]byte(nil), buf...)
	if len(out) == 0 {
		return out, Mutation{BitPos: -1}
	}
	totalBits := len(out) * 8
	width := f.FlipBits
	if width > totalBits {
		width = totalBits
	}
	start := rng.Intn(totalBits - width + 1)
	for i := 0; i < width; i++ {
		bit := start + i
		out[bit/8] ^= 1 << uint(bit%8)
	}
	return out, Mutation{Length: len(buf), BitPos: start}
}
