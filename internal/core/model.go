// Package core implements FFIS itself: the fault models of Table I, fault
// signatures, the I/O profiler, the fault injector that corrupts exactly one
// dynamic instance of a file-system primitive, and the campaign runner that
// repeats injections until statistical significance.
//
// The package mirrors the three components of Figure 4 in the paper:
//
//   - Fault generator — Config.Signature() turns a user configuration into a
//     fault signature (fault model + target primitive + model feature).
//   - I/O profiler — Profile() executes the workload fault-free on a
//     CountingFS and reports the dynamic count of the target primitive.
//   - Fault injector — NewInjector()/InjectorFS corrupt the randomly chosen
//     instance; Campaign() loops runs and classifies outcomes.
//
// Beyond the paper's flat single-device setup, campaigns can route faults
// by storage tier: a Workload whose NewFS returns a *vfs.MountFS world can
// be armed on a subset of its mounts via CampaignConfig.ArmMounts, in which
// case ProfileMounts counts — and the injector corrupts — only the I/O
// routed to those mounts. All other tiers stay clean, and outcome
// classification always reads through the unarmed view of the same storage.
package core

import (
	"fmt"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// FaultModel identifies one of the SSD partial-failure manifestations FFIS
// supports (Table I).
type FaultModel int

const (
	// BitFlip flips consecutive bits at a random position in the write
	// buffer, modelling silent bit corruption that escaped the SSD's ECC.
	BitFlip FaultModel = iota
	// ShornWrite persists only the leading fraction of each 4 KiB block at
	// 512-byte sector granularity while still reporting full success,
	// modelling a write torn by a power fault.
	ShornWrite
	// DroppedWrite discards the write entirely yet reports full success,
	// modelling a write acknowledged by the device but never persisted.
	DroppedWrite
)

// Models lists all fault models in presentation order (BF, SW, DW).
func Models() []FaultModel { return []FaultModel{BitFlip, ShornWrite, DroppedWrite} }

func (m FaultModel) String() string {
	switch m {
	case BitFlip:
		return "bit-flip"
	case ShornWrite:
		return "shorn-write"
	case DroppedWrite:
		return "dropped-write"
	default:
		return fmt.Sprintf("fault-model(%d)", int(m))
	}
}

// Short returns the two-letter code used in Figure 7 ("BF", "SW", "DW").
func (m FaultModel) Short() string {
	switch m {
	case BitFlip:
		return "BF"
	case ShornWrite:
		return "SW"
	case DroppedWrite:
		return "DW"
	default:
		return "??"
	}
}

// Spec returns the Table I row for the model: which FUSE primitives can host
// the fault and the key implementation feature.
func (m FaultModel) Spec() (primitives []vfs.Primitive, feature string) {
	prims := []vfs.Primitive{vfs.PrimWrite, vfs.PrimMknod, vfs.PrimChmod}
	switch m {
	case BitFlip:
		return prims, "flip consecutive multiple bits (default 2)"
	case ShornWrite:
		return prims, "completely write the first 3/8th or 7/8th of each 4KB block at 512B granularity; reported size unchanged"
	case DroppedWrite:
		return prims, "the write operation is ignored; success with the full size is returned"
	default:
		return nil, "unknown"
	}
}

// Feature carries the per-model tunables of a fault signature. Zero values
// select the paper's defaults via normalize().
type Feature struct {
	// FlipBits is the number of consecutive bits flipped by BitFlip.
	// The paper's default is 2 (footnote 3 also evaluates 4).
	FlipBits int
	// ShornKeepNum/ShornKeepDen give the fraction of each block persisted
	// by ShornWrite: 3/8 or 7/8 in Table I. Default 7/8.
	ShornKeepNum int
	ShornKeepDen int
	// SectorSize is the persistence granularity of the device (512 B).
	SectorSize int
	// BlockSize is the device program block (4 KiB).
	BlockSize int
}

// normalize fills in the paper defaults for any unset field.
func (f Feature) normalize() Feature {
	if f.FlipBits <= 0 {
		f.FlipBits = 2
	}
	if f.ShornKeepDen <= 0 {
		f.ShornKeepDen = 8
	}
	if f.ShornKeepNum <= 0 {
		f.ShornKeepNum = 7
	}
	if f.ShornKeepNum >= f.ShornKeepDen {
		f.ShornKeepNum = f.ShornKeepDen - 1
	}
	if f.SectorSize <= 0 {
		f.SectorSize = 512
	}
	if f.BlockSize <= 0 {
		f.BlockSize = 4096
	}
	return f
}

// Signature is the fault signature produced by the fault generator: the
// fault model, the file-system primitive hosting the fault, and the model
// feature (Figure 4, "Generating fault signature").
type Signature struct {
	Model     FaultModel
	Primitive vfs.Primitive
	Feature   Feature
}

func (s Signature) String() string {
	return fmt.Sprintf("%s@%s", s.Model, s.Primitive)
}

// Config is the user configuration the fault generator consumes.
type Config struct {
	Model     FaultModel
	Primitive vfs.Primitive // default: write, as in Section IV-B
	Feature   Feature
}

// Signature generates the fault signature from the configuration, applying
// the paper's defaults for anything unspecified.
func (c Config) Signature() Signature {
	prim := c.Primitive
	if prim == "" {
		prim = vfs.PrimWrite
	}
	return Signature{Model: c.Model, Primitive: prim, Feature: c.Feature.normalize()}
}

// Mutation describes what a fault model did to one intercepted write, for
// logging and for tests that assert the corruption shape.
type Mutation struct {
	Model   FaultModel
	Path    string // file the write targeted
	Offset  int64  // file offset of the write
	Length  int    // length of the original buffer
	BitPos  int    // BitFlip: first flipped bit index within the buffer
	Kept    int    // ShornWrite: bytes actually persisted
	Dropped bool   // DroppedWrite: write suppressed
	Sectors int    // ShornWrite: sectors suppressed
}

// mutateBitFlip returns a copy of buf with feature.FlipBits consecutive bits
// flipped starting at a random bit position. Flipping may straddle byte
// boundaries; positions are uniform over the whole buffer.
func mutateBitFlip(buf []byte, f Feature, rng *stats.RNG) ([]byte, Mutation) {
	out := append([]byte(nil), buf...)
	if len(out) == 0 {
		return out, Mutation{Model: BitFlip, BitPos: -1}
	}
	totalBits := len(out) * 8
	width := f.FlipBits
	if width > totalBits {
		width = totalBits
	}
	start := rng.Intn(totalBits - width + 1)
	for i := 0; i < width; i++ {
		bit := start + i
		out[bit/8] ^= 1 << uint(bit%8)
	}
	return out, Mutation{Model: BitFlip, Length: len(buf), BitPos: start}
}

// shornPlan computes which byte ranges of a write survive a shorn write.
// The device persists only the first KeepNum/KeepDen of every BlockSize
// block, rounded to SectorSize sectors; everything else is lost. Block
// boundaries are device-absolute, so the plan depends on the file offset.
func shornPlan(off int64, length int, f Feature) (keep []segment, droppedSectors int) {
	if length == 0 {
		return nil, 0
	}
	keepBytesPerBlock := f.BlockSize * f.ShornKeepNum / f.ShornKeepDen
	keepBytesPerBlock -= keepBytesPerBlock % f.SectorSize
	end := off + int64(length)
	blockStart := off - off%int64(f.BlockSize)
	for bs := blockStart; bs < end; bs += int64(f.BlockSize) {
		keepEnd := bs + int64(keepBytesPerBlock)
		segStart, segEnd := maxI64(bs, off), minI64(keepEnd, end)
		if segEnd > segStart {
			keep = append(keep, segment{segStart - off, segEnd - off})
		}
		lostStart, lostEnd := maxI64(keepEnd, off), minI64(bs+int64(f.BlockSize), end)
		if lostEnd > lostStart {
			droppedSectors += int((lostEnd - lostStart + int64(f.SectorSize) - 1) / int64(f.SectorSize))
		}
	}
	return keep, droppedSectors
}

// segment is a [Start,End) byte range relative to the write buffer.
type segment struct{ Start, End int64 }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
