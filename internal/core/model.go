// Package core implements FFIS itself: the fault models of Table I, fault
// signatures, the I/O profiler, the fault injector that corrupts exactly one
// dynamic instance of a file-system primitive, and the campaign runner that
// repeats injections until statistical significance.
//
// The package mirrors the three components of Figure 4 in the paper:
//
//   - Fault generator — Config.Signature() turns a user configuration into a
//     fault signature (fault model + target primitive + model feature).
//   - I/O profiler — Profile() executes the workload fault-free on a
//     CountingFS and reports the dynamic count of the target primitive.
//   - Fault injector — NewInjector()/InjectorFS corrupt the randomly chosen
//     instance; Campaign() loops runs and classifies outcomes.
//
// Beyond the paper's flat single-device setup, campaigns can route faults
// by storage tier: a Workload whose NewFS returns a *vfs.MountFS world can
// be armed on a subset of its mounts via CampaignConfig.ArmMounts, in which
// case ProfileMounts counts — and the injector corrupts — only the I/O
// routed to those mounts. All other tiers stay clean, and outcome
// classification always reads through the unarmed view of the same storage.
package core

import (
	"fmt"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// FaultModel identifies one of the SSD partial-failure manifestations FFIS
// supports (Table I).
type FaultModel int

const (
	// BitFlip flips consecutive bits at a random position in the write
	// buffer, modelling silent bit corruption that escaped the SSD's ECC.
	BitFlip FaultModel = iota
	// ShornWrite persists only the leading fraction of each 4 KiB block at
	// 512-byte sector granularity while still reporting full success,
	// modelling a write torn by a power fault.
	ShornWrite
	// DroppedWrite discards the write entirely yet reports full success,
	// modelling a write acknowledged by the device but never persisted.
	DroppedWrite
	// ReadBitFlip flips consecutive bits in the buffer returned by the
	// target read instance — bit rot surfaced at read time. The fault is
	// transient: the media is unchanged and only this one read observes the
	// corruption (a re-read delivers clean data).
	ReadBitFlip
	// UnreadableSector fails the target read instance with EIO, modelling an
	// uncorrectable ECC error: the device refuses to deliver the sector at
	// all rather than deliver it silently corrupted.
	UnreadableSector
	// LatentCorruption mutates the target file's at-rest bytes in place when
	// the target read instance executes — data corrupted between the
	// producing and the consuming stage. Unlike ReadBitFlip the damage is
	// durable: this read and every subsequent read (including the outcome
	// classifier's) observe the same corrupted bytes.
	LatentCorruption
)

// Models lists the write-path fault models in presentation order (BF, SW,
// DW) — the Table I vocabulary Figure 7 sweeps.
func Models() []FaultModel { return []FaultModel{BitFlip, ShornWrite, DroppedWrite} }

// ReadModels lists the read-path fault models in presentation order (RB,
// UR, LC): faults that surface when data is consumed, not produced.
func ReadModels() []FaultModel {
	return []FaultModel{ReadBitFlip, UnreadableSector, LatentCorruption}
}

// AllModels lists every fault model, write path first.
func AllModels() []FaultModel { return append(Models(), ReadModels()...) }

// IsRead reports whether the model hosts on the read path (its default
// target primitive is read rather than write).
func (m FaultModel) IsRead() bool {
	switch m {
	case ReadBitFlip, UnreadableSector, LatentCorruption:
		return true
	}
	return false
}

func (m FaultModel) String() string {
	switch m {
	case BitFlip:
		return "bit-flip"
	case ShornWrite:
		return "shorn-write"
	case DroppedWrite:
		return "dropped-write"
	case ReadBitFlip:
		return "read-bit-flip"
	case UnreadableSector:
		return "unreadable-sector"
	case LatentCorruption:
		return "latent-corruption"
	default:
		return fmt.Sprintf("fault-model(%d)", int(m))
	}
}

// Short returns the two-letter code used in Figure 7 ("BF", "SW", "DW") and
// its read-path extension ("RB", "UR", "LC").
func (m FaultModel) Short() string {
	switch m {
	case BitFlip:
		return "BF"
	case ShornWrite:
		return "SW"
	case DroppedWrite:
		return "DW"
	case ReadBitFlip:
		return "RB"
	case UnreadableSector:
		return "UR"
	case LatentCorruption:
		return "LC"
	default:
		return "??"
	}
}

// Spec returns the Table I row for the model: which FUSE primitives can host
// the fault and the key implementation feature. The primitive list is the
// authoritative hostable set — Signature.Validate rejects any combination
// outside it, so a campaign can never arm a fault the injector silently
// passes through.
func (m FaultModel) Spec() (primitives []vfs.Primitive, feature string) {
	writePrims := []vfs.Primitive{vfs.PrimWrite, vfs.PrimMknod, vfs.PrimChmod}
	readPrims := []vfs.Primitive{vfs.PrimRead}
	switch m {
	case BitFlip:
		return append(writePrims, vfs.PrimTruncate), "flip consecutive multiple bits (default 2)"
	case ShornWrite:
		return writePrims, "completely write the first 3/8th or 7/8th of each 4KB block at 512B granularity; reported size unchanged"
	case DroppedWrite:
		return append(writePrims, vfs.PrimTruncate), "the write operation is ignored; success with the full size is returned"
	case ReadBitFlip:
		return readPrims, "flip consecutive multiple bits in the returned read buffer; media unchanged (transient)"
	case UnreadableSector:
		return readPrims, "the read fails with EIO (uncorrectable ECC); no data is delivered"
	case LatentCorruption:
		return readPrims, "flip consecutive bits in the at-rest bytes under the read range; every later read observes it"
	default:
		return nil, "unknown"
	}
}

// Feature carries the per-model tunables of a fault signature. Zero values
// select the paper's defaults via normalize().
type Feature struct {
	// FlipBits is the number of consecutive bits flipped by BitFlip.
	// The paper's default is 2 (footnote 3 also evaluates 4).
	FlipBits int
	// ShornKeepNum/ShornKeepDen give the fraction of each block persisted
	// by ShornWrite: 3/8 or 7/8 in Table I. Default 7/8.
	ShornKeepNum int
	ShornKeepDen int
	// SectorSize is the persistence granularity of the device (512 B).
	SectorSize int
	// BlockSize is the device program block (4 KiB).
	BlockSize int
}

// normalize fills in the paper defaults for any unset field.
func (f Feature) normalize() Feature {
	if f.FlipBits <= 0 {
		f.FlipBits = 2
	}
	if f.ShornKeepDen <= 0 {
		f.ShornKeepDen = 8
	}
	if f.ShornKeepNum <= 0 {
		f.ShornKeepNum = 7
	}
	if f.ShornKeepNum >= f.ShornKeepDen {
		f.ShornKeepNum = f.ShornKeepDen - 1
	}
	if f.SectorSize <= 0 {
		f.SectorSize = 512
	}
	if f.BlockSize <= 0 {
		f.BlockSize = 4096
	}
	return f
}

// Signature is the fault signature produced by the fault generator: the
// fault model, the file-system primitive hosting the fault, and the model
// feature (Figure 4, "Generating fault signature").
type Signature struct {
	Model     FaultModel
	Primitive vfs.Primitive
	Feature   Feature
}

func (s Signature) String() string {
	return fmt.Sprintf("%s@%s", s.Model, s.Primitive)
}

// Validate reports whether the injector can actually host this signature:
// the primitive must be in the model's Spec() set. Campaign and Engine call
// it before profiling, so a signature the injector would silently pass
// through (e.g. shorn-write@truncate, or any model on stat) is a
// configuration error instead of a campaign that profiles a nonzero count
// and then tallies 100% benign.
func (s Signature) Validate() error {
	prims, _ := s.Model.Spec()
	for _, p := range prims {
		if p == s.Primitive {
			return nil
		}
	}
	return fmt.Errorf("core: injector cannot host %s: model %s hosts only %v", s, s.Model, prims)
}

// Config is the user configuration the fault generator consumes.
type Config struct {
	Model FaultModel
	// Primitive defaults to write for the write-path models (Section IV-B)
	// and to read for the read-path models.
	Primitive vfs.Primitive
	Feature   Feature
}

// Signature generates the fault signature from the configuration, applying
// the paper's defaults for anything unspecified.
func (c Config) Signature() Signature {
	prim := c.Primitive
	if prim == "" {
		prim = vfs.PrimWrite
		if c.Model.IsRead() {
			prim = vfs.PrimRead
		}
	}
	return Signature{Model: c.Model, Primitive: prim, Feature: c.Feature.normalize()}
}

// Mutation describes what a fault model did to one intercepted primitive
// instance, for logging and for tests that assert the corruption shape.
type Mutation struct {
	Model   FaultModel
	Path    string // file the primitive targeted
	Offset  int64  // file offset of the write/read; requested size for truncate
	Length  int    // length of the original buffer
	BitPos  int    // bit-flip models: first flipped bit index within the buffer (-1: nothing to flip)
	Kept    int    // ShornWrite: bytes actually persisted
	Dropped bool   // DroppedWrite: write/truncate suppressed
	Sectors int    // ShornWrite: sectors suppressed
	// NewSize is the corrupted size a BitFlip@truncate actually applied.
	NewSize int64
	// Unreadable marks an UnreadableSector fault: the read failed with
	// vfs.ErrUnreadable and delivered no data.
	Unreadable bool
	// Latent marks a LatentCorruption fault: the flip was written back to
	// the at-rest bytes, so it outlives this read.
	Latent bool
}

// mutateBitFlip returns a copy of buf with feature.FlipBits consecutive bits
// flipped starting at a random bit position. Flipping may straddle byte
// boundaries; positions are uniform over the whole buffer.
func mutateBitFlip(buf []byte, f Feature, rng *stats.RNG) ([]byte, Mutation) {
	out := append([]byte(nil), buf...)
	if len(out) == 0 {
		return out, Mutation{Model: BitFlip, BitPos: -1}
	}
	totalBits := len(out) * 8
	width := f.FlipBits
	if width > totalBits {
		width = totalBits
	}
	start := rng.Intn(totalBits - width + 1)
	for i := 0; i < width; i++ {
		bit := start + i
		out[bit/8] ^= 1 << uint(bit%8)
	}
	return out, Mutation{Model: BitFlip, Length: len(buf), BitPos: start}
}

// shornPlan computes which byte ranges of a write survive a shorn write.
// The device persists only the first KeepNum/KeepDen of every BlockSize
// block, rounded to SectorSize sectors; everything else is lost. Block
// boundaries are device-absolute, so the plan depends on the file offset.
func shornPlan(off int64, length int, f Feature) (keep []segment, droppedSectors int) {
	if length == 0 {
		return nil, 0
	}
	keepBytesPerBlock := f.BlockSize * f.ShornKeepNum / f.ShornKeepDen
	keepBytesPerBlock -= keepBytesPerBlock % f.SectorSize
	end := off + int64(length)
	blockStart := off - off%int64(f.BlockSize)
	for bs := blockStart; bs < end; bs += int64(f.BlockSize) {
		keepEnd := bs + int64(keepBytesPerBlock)
		segStart, segEnd := maxI64(bs, off), minI64(keepEnd, end)
		if segEnd > segStart {
			keep = append(keep, segment{segStart - off, segEnd - off})
		}
		lostStart, lostEnd := maxI64(keepEnd, off), minI64(bs+int64(f.BlockSize), end)
		if lostEnd > lostStart {
			droppedSectors += int((lostEnd - lostStart + int64(f.SectorSize) - 1) / int64(f.SectorSize))
		}
	}
	return keep, droppedSectors
}

// segment is a [Start,End) byte range relative to the write buffer.
type segment struct{ Start, End int64 }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
