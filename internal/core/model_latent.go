package core

import (
	"fmt"
	"io"

	"ffis/internal/vfs"
)

// LatentCorruption mutates the target file's at-rest bytes in place when
// the target read instance executes — data corrupted between the producing
// and the consuming stage. Unlike ReadBitFlip the damage is durable: this
// read and every subsequent read (including the outcome classifier's)
// observe the same corrupted bytes.
var LatentCorruption = Register(latentCorruptionModel{}, "latent")

type latentCorruptionModel struct{ BaseModel }

func (latentCorruptionModel) Name() string  { return "latent-corruption" }
func (latentCorruptionModel) Short() string { return "LC" }

func (latentCorruptionModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimRead}
}

func (latentCorruptionModel) Describe() string {
	return "flip consecutive bits in the at-rest bytes under the read range; every later read observes it"
}

// MutateRead corrupts the at-rest bytes under the read range before the
// read executes, so this very read already observes the damage.
func (lc latentCorruptionModel) MutateRead(env Env, op ReadOp) (int, error) {
	if op.OffErr != nil {
		return 0, fmt.Errorf("core: injector: device offset unknown for armed read: %w", op.OffErr)
	}
	if err := lc.corruptAtRest(env, op); err != nil {
		return 0, err
	}
	return op.Do(op.Buf)
}

// corruptAtRest flips bits in the stored bytes under the read range,
// clamped to the file's current size, through a writable side handle on the
// uninstrumented view — so the corruption is durable and every subsequent
// reader (the application and the outcome classifier alike) observes it.
func (lc latentCorruptionModel) corruptAtRest(env Env, op ReadOp) error {
	// Append opens read-write without truncating and works on files opened
	// read-only by the application.
	wf, err := op.FS.Append(op.Path)
	if err != nil {
		return fmt.Errorf("core: injector: latent corruption of %s: %w", op.Path, err)
	}
	defer wf.Close()
	size, err := wf.Size()
	if err != nil {
		return err
	}
	if op.Off >= size || op.Off < 0 {
		// The target read starts at/after EOF: there are no at-rest bytes
		// under it. The shot is spent on a read that delivers no data —
		// record the no-op so the run still counts as injected.
		env.Record(Mutation{Model: lc, Path: op.Path, Offset: op.Off, BitPos: -1, Latent: true})
		return nil
	}
	n := int64(len(op.Buf))
	if op.Off+n > size {
		n = size - op.Off
	}
	buf := make([]byte, n)
	if _, err := wf.ReadAt(buf, op.Off); err != nil && err != io.EOF {
		return err
	}
	mutated, m := env.Flip(buf)
	if _, err := wf.WriteAt(mutated, op.Off); err != nil {
		return err
	}
	m.Model = lc
	m.Path = op.Path
	m.Offset = op.Off
	m.Latent = true
	env.Record(m)
	return nil
}

func (latentCorruptionModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("latent-corruption %s off=%d bit=%d (at rest)", m.Path, m.Offset, m.BitPos)
}
