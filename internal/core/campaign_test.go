package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/vfs"
)

// toyWorkload writes a known pattern and classifies by comparing with the
// golden bytes; it stands in for a real application in campaign tests.
func toyWorkload() Workload {
	golden := bytes.Repeat([]byte{0xA5}, 4096)
	return Workload{
		Name: "toy",
		Run: func(fs vfs.FS) error {
			f, err := fs.Create("/out/data.bin")
			if err != nil {
				return err
			}
			defer f.Close()
			for off := 0; off < len(golden); off += 512 {
				if _, err := f.Write(golden[off : off+512]); err != nil {
					return err
				}
			}
			return nil
		},
		Setup: func(fs vfs.FS) error { return fs.MkdirAll("/out") },
		Classify: func(fs vfs.FS, runErr error) classify.Outcome {
			if runErr != nil {
				return classify.Crash
			}
			got, err := vfs.ReadFile(fs, "/out/data.bin")
			if err != nil {
				return classify.Crash
			}
			if bytes.Equal(got, golden) {
				return classify.Benign
			}
			return classify.SDC
		},
	}
}

func TestProfileCountsWrites(t *testing.T) {
	w := toyWorkload()
	count, err := Profile(w, Config{Model: BitFlip}.Signature())
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 { // 4096/512 writes
		t.Fatalf("profiled %d writes, want 8", count)
	}
}

func TestProfileFailsWhenWorkloadFails(t *testing.T) {
	w := Workload{
		Name: "broken",
		Run:  func(fs vfs.FS) error { return errors.New("boom") },
	}
	if _, err := Profile(w, Config{Model: BitFlip}.Signature()); err == nil {
		t.Fatal("expected profiling error")
	}
}

func TestCampaignBitFlipAlwaysCorrupts(t *testing.T) {
	res, err := Campaign(CampaignConfig{
		Fault: Config{Model: BitFlip},
		Runs:  50,
		Seed:  1,
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.ProfileCount != 8 {
		t.Fatalf("profile count = %d", res.ProfileCount)
	}
	if res.Tally.Total() != 50 {
		t.Fatalf("tally total = %d", res.Tally.Total())
	}
	// Every bit flip in this workload lands in real data: all runs SDC.
	if res.Tally.Count(classify.SDC) != 50 {
		t.Fatalf("SDC = %d, want 50: %s", res.Tally.Count(classify.SDC), res.Tally.String())
	}
	for _, rec := range res.Records {
		if !rec.Fired {
			t.Fatalf("run %d never fired (target %d)", rec.Index, rec.Target)
		}
		if rec.Target < 0 || rec.Target >= 8 {
			t.Fatalf("target %d out of profile range", rec.Target)
		}
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []classify.Outcome {
		res, err := Campaign(CampaignConfig{
			Fault:   Config{Model: BitFlip},
			Runs:    30,
			Seed:    42,
			Workers: workers,
		}, toyWorkload())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]classify.Outcome, len(res.Records))
		for i, r := range res.Records {
			out[i] = r.Outcome
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("run %d differs between worker counts", i)
		}
	}
}

func TestCampaignDroppedWriteNeverBenignHere(t *testing.T) {
	res, err := Campaign(CampaignConfig{
		Fault: Config{Model: DroppedWrite},
		Runs:  20,
		Seed:  2,
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Count(classify.Benign) != 0 {
		t.Fatalf("dropped writes produced benign runs: %s", res.Tally.String())
	}
}

func TestCampaignShornWriteOnUniformDataIsBenign(t *testing.T) {
	// The toy workload writes a uniform pattern in 512-byte sequential
	// chunks, so stale one-sector-lagged data equals the new data: shorn
	// writes are masked — the Nyx phenomenology in miniature.
	res, err := Campaign(CampaignConfig{
		Fault: Config{Model: ShornWrite},
		Runs:  20,
		Seed:  3,
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Count(classify.Benign) != 20 {
		t.Fatalf("expected all benign, got %s", res.Tally.String())
	}
}

func TestCampaignRejectsZeroRuns(t *testing.T) {
	if _, err := Campaign(CampaignConfig{Fault: Config{Model: BitFlip}}, toyWorkload()); err == nil {
		t.Fatal("expected error for Runs=0")
	}
}

func TestCampaignNoTargets(t *testing.T) {
	w := Workload{
		Name: "no-io",
		Run:  func(fs vfs.FS) error { return nil },
	}
	_, err := Campaign(CampaignConfig{Fault: Config{Model: BitFlip}, Runs: 5}, w)
	if !errors.Is(err, ErrNoTargets) {
		t.Fatalf("err = %v, want ErrNoTargets", err)
	}
}

func TestRunRecoveringCatchesPanics(t *testing.T) {
	w := Workload{
		Name: "panics",
		Run: func(fs vfs.FS) error {
			var s []int
			_ = s[3] // index out of range
			return nil
		},
		Classify: func(fs vfs.FS, runErr error) classify.Outcome {
			if runErr != nil {
				return classify.Crash
			}
			return classify.Benign
		},
	}
	rec, err := RunOnce(w, Config{Model: BitFlip}.Signature(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != classify.Crash {
		t.Fatalf("outcome = %s, want crash", rec.Outcome)
	}
	if rec.RunErr == nil || !strings.Contains(rec.RunErr.Error(), "panic") {
		t.Fatalf("runErr = %v", rec.RunErr)
	}
}

func TestRunOnceDefaultClassification(t *testing.T) {
	w := Workload{
		Name: "silent",
		Run:  func(fs vfs.FS) error { return vfs.WriteFile(fs, "/f", []byte("x")) },
	}
	rec, err := RunOnce(w, Config{Model: BitFlip}.Signature(), 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != classify.Benign {
		t.Fatalf("outcome = %s", rec.Outcome)
	}
}

func TestGoldenSnapshotAndSnapshot(t *testing.T) {
	w := toyWorkload()
	snap, err := GoldenSnapshot(w, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d files", len(snap))
	}
	data, ok := snap["/out/data.bin"]
	if !ok || len(data) != 4096 {
		t.Fatalf("missing golden file: %v", snap)
	}
}

func TestCampaignResultCellLabel(t *testing.T) {
	res := CampaignResult{Workload: "nyx", Signature: Config{Model: DroppedWrite}.Signature()}
	if got := res.Cell().Label; got != "nyx/DW" {
		t.Fatalf("label = %q", got)
	}
}

func TestCampaignRunErrorPropagates(t *testing.T) {
	w := Workload{
		Name:  "setup-fails-sometimes",
		Setup: func(fs vfs.FS) error { return fmt.Errorf("setup exploded") },
		Run:   func(fs vfs.FS) error { return vfs.WriteFile(fs, "/f", []byte("x")) },
	}
	if _, err := Campaign(CampaignConfig{Fault: Config{Model: BitFlip}, Runs: 2}, w); err == nil {
		t.Fatal("expected setup error to propagate")
	}
}
