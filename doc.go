// Package ffis is the root of the FFIS reproduction: a FUSE-style storage
// fault-injection framework and the study of its impact on HPC applications
// (Nyx, QMCPACK, Montage) and the HDF5 file format, reproducing
// "Characterizing Impacts of Storage Faults on HPC Applications: A
// Methodology and Insights" (IEEE CLUSTER 2021).
//
// The root package carries only the repository-level benchmarks
// (bench_test.go), one per paper table and figure; the implementation lives
// under internal/ (see DESIGN.md for the module map) and the runnable
// entry points under cmd/ and examples/.
package ffis
