module ffis

go 1.24
