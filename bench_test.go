// Repository-level benchmarks: one per table and figure of the paper's
// evaluation section, plus the ablation benches DESIGN.md calls out and
// microbenchmarks of the load-bearing substrates.
//
// Campaign benches run reduced-size campaigns per iteration and report the
// outcome rates via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates the paper's headline numbers in shape:
//
//	go test -bench=Fig7 -benchtime=1x       # the Figure 7 grid
//	go test -bench=Table3 -benchtime=1x     # the metadata campaign
package ffis

import (
	"fmt"
	"sync"
	"testing"

	"ffis/internal/apps/montage"
	"ffis/internal/apps/nyx"
	"ffis/internal/apps/qmcpack"
	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/experiments"
	"ffis/internal/hdf5"
	"ffis/internal/metainject"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// benchOpts shrinks campaigns so each bench iteration stays around a
// second; cmd/experiments runs the full paper scale.
func benchOpts() experiments.Options {
	return experiments.Options{
		Runs:       24,
		Seed:       2021,
		NyxN:       24,
		MetaStride: 5,
	}
}

func reportTally(b *testing.B, t classify.Tally) {
	b.ReportMetric(100*t.Rate(classify.Benign).P(), "benign%")
	b.ReportMetric(100*t.Rate(classify.SDC).P(), "SDC%")
	b.ReportMetric(100*t.Rate(classify.Detected).P(), "detected%")
	b.ReportMetric(100*t.Rate(classify.Crash).P(), "crash%")
}

// --- Table I ---------------------------------------------------------------

func BenchmarkTable1FaultModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// --- Table III: metadata byte campaign --------------------------------------

func BenchmarkTable3MetadataCampaign(b *testing.B) {
	var last *metainject.Result
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportTally(b, last.Tally)
}

// --- Table IV: directed field study -----------------------------------------

func BenchmarkTable4FieldStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, effects, err := experiments.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(effects) != 6 {
			b.Fatalf("%d effects", len(effects))
		}
	}
}

// --- Figures 5, 6, 8, 9 ------------------------------------------------------

func BenchmarkFig5FieldVisuals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6MantissaSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8MassHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9MontageDropped(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig9(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: the main characterization grid -------------------------------

// Workload construction is expensive (Monte Carlo, golden pipelines); build
// each cell once and share it across bench iterations.
var (
	workloadOnce  sync.Once
	workloadCache map[string]core.Workload
)

func cachedWorkload(b *testing.B, cell string) core.Workload {
	workloadOnce.Do(func() {
		workloadCache = map[string]core.Workload{}
		for _, c := range experiments.Fig7Cells {
			w, err := experiments.NewWorkload(c, benchOpts())
			if err != nil {
				b.Fatalf("workload %s: %v", c, err)
			}
			workloadCache[c] = w
		}
	})
	return workloadCache[cell]
}

func benchCell(b *testing.B, cell string, model core.Model) {
	w := cachedWorkload(b, cell)
	opts := benchOpts()
	var last classify.Tally
	for i := 0; i < b.N; i++ {
		res, err := core.Campaign(core.CampaignConfig{
			Fault: core.Config{Model: model},
			Runs:  opts.Runs,
			Seed:  opts.Seed + uint64(i),
		}, w)
		if err != nil {
			b.Fatal(err)
		}
		last = res.Tally
	}
	reportTally(b, last)
}

func BenchmarkFig7_Nyx_BitFlip(b *testing.B)      { benchCell(b, "nyx", core.BitFlip) }
func BenchmarkFig7_Nyx_ShornWrite(b *testing.B)   { benchCell(b, "nyx", core.ShornWrite) }
func BenchmarkFig7_Nyx_DroppedWrite(b *testing.B) { benchCell(b, "nyx", core.DroppedWrite) }

func BenchmarkFig7_QMC_BitFlip(b *testing.B)      { benchCell(b, "qmcpack", core.BitFlip) }
func BenchmarkFig7_QMC_ShornWrite(b *testing.B)   { benchCell(b, "qmcpack", core.ShornWrite) }
func BenchmarkFig7_QMC_DroppedWrite(b *testing.B) { benchCell(b, "qmcpack", core.DroppedWrite) }

func BenchmarkFig7_MT1_BitFlip(b *testing.B)      { benchCell(b, "MT1", core.BitFlip) }
func BenchmarkFig7_MT1_ShornWrite(b *testing.B)   { benchCell(b, "MT1", core.ShornWrite) }
func BenchmarkFig7_MT1_DroppedWrite(b *testing.B) { benchCell(b, "MT1", core.DroppedWrite) }

func BenchmarkFig7_MT2_BitFlip(b *testing.B)      { benchCell(b, "MT2", core.BitFlip) }
func BenchmarkFig7_MT2_ShornWrite(b *testing.B)   { benchCell(b, "MT2", core.ShornWrite) }
func BenchmarkFig7_MT2_DroppedWrite(b *testing.B) { benchCell(b, "MT2", core.DroppedWrite) }

func BenchmarkFig7_MT3_BitFlip(b *testing.B)      { benchCell(b, "MT3", core.BitFlip) }
func BenchmarkFig7_MT3_ShornWrite(b *testing.B)   { benchCell(b, "MT3", core.ShornWrite) }
func BenchmarkFig7_MT3_DroppedWrite(b *testing.B) { benchCell(b, "MT3", core.DroppedWrite) }

func BenchmarkFig7_MT4_BitFlip(b *testing.B)      { benchCell(b, "MT4", core.BitFlip) }
func BenchmarkFig7_MT4_ShornWrite(b *testing.B)   { benchCell(b, "MT4", core.ShornWrite) }
func BenchmarkFig7_MT4_DroppedWrite(b *testing.B) { benchCell(b, "MT4", core.DroppedWrite) }

// --- Ablations (DESIGN.md §5) ------------------------------------------------

// BenchmarkAblationFlipWidth compares the paper's 2-bit flips against the
// 4-bit variant of footnote 3 ("the SDC rate remains minimal for Nyx").
func BenchmarkAblationFlipWidth(b *testing.B) {
	for _, width := range []int{2, 4} {
		width := width
		b.Run(map[int]string{2: "2bit", 4: "4bit"}[width], func(b *testing.B) {
			w := cachedWorkload(b, "nyx")
			var last classify.Tally
			for i := 0; i < b.N; i++ {
				res, err := core.Campaign(core.CampaignConfig{
					Fault: core.Config{Model: core.BitFlip, Feature: core.Feature{FlipBits: width}},
					Runs:  benchOpts().Runs,
					Seed:  99,
				}, w)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Tally
			}
			reportTally(b, last)
		})
	}
}

// BenchmarkAblationShornFraction compares the 3/8 and 7/8 shorn-write
// variants of Table I.
func BenchmarkAblationShornFraction(b *testing.B) {
	for _, keep := range []int{3, 7} {
		keep := keep
		b.Run(map[int]string{3: "keep3of8", 7: "keep7of8"}[keep], func(b *testing.B) {
			w := cachedWorkload(b, "qmcpack")
			var last classify.Tally
			for i := 0; i < b.N; i++ {
				res, err := core.Campaign(core.CampaignConfig{
					Fault: core.Config{Model: core.ShornWrite, Feature: core.Feature{ShornKeepNum: keep, ShornKeepDen: 8}},
					Runs:  benchOpts().Runs,
					Seed:  99,
				}, w)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Tally
			}
			reportTally(b, last)
		})
	}
}

// BenchmarkAblationHaloThreshold sweeps the halo candidate threshold around
// Nyx's 81.66 constant.
func BenchmarkAblationHaloThreshold(b *testing.B) {
	sim := nyx.DefaultSim()
	sim.N = 24
	sim.NumHalos = 4
	field := sim.Generate()
	for _, factor := range []float64{40, 81.66, 120} {
		factor := factor
		b.Run(map[float64]string{40: "40x", 81.66: "81.66x", 120: "120x"}[factor], func(b *testing.B) {
			var halos int
			for i := 0; i < b.N; i++ {
				cat := nyx.FindHalos(field, sim.N, nyx.HaloConfig{ThresholdFactor: factor, MinCells: 10})
				halos = len(cat.Halos)
			}
			b.ReportMetric(float64(halos), "halos")
		})
	}
}

// BenchmarkAblationAvgTolerance sweeps the average-value detector tolerance
// around the paper's 0.1% and reports how many dropped-write runs it flags.
func BenchmarkAblationAvgTolerance(b *testing.B) {
	w := cachedWorkload(b, "nyx")
	sig := core.Config{Model: core.DroppedWrite}.Signature()
	count, err := core.Profile(w, sig)
	if err != nil {
		b.Fatal(err)
	}
	for _, tol := range []float64{1e-4, 1e-3, 1e-2} {
		tol := tol
		b.Run(map[float64]string{1e-4: "0.01%", 1e-3: "0.1%", 1e-2: "1%"}[tol], func(b *testing.B) {
			flagged, total := 0, 0
			for i := 0; i < b.N; i++ {
				rng := stats.NewRNG(uint64(i) + 5)
				fs := vfs.NewMemFS()
				inj := core.NewInjector(sig, int64(rng.Intn(int(count))), rng)
				if err := w.Run(inj.Wrap(fs)); err != nil {
					continue
				}
				cat, err := nyx.RunHaloFinder(fs, nyx.OutputPath, nyx.DefaultHalo())
				if err != nil {
					continue
				}
				total++
				if dev := cat.Mean - 1; dev > tol || dev < -tol {
					flagged++
				}
			}
			if total > 0 {
				b.ReportMetric(100*float64(flagged)/float64(total), "flagged%")
			}
		})
	}
}

// --- Campaign engine vs the pre-engine sequential path -----------------------

// BenchmarkFig7GridSequential is the pre-engine reference: cells run one
// after another and every injection run rebuilds its world (NewFS + Setup)
// from scratch. BenchmarkFig7GridEngine runs the identical grid (same seed,
// identical tallies — TestFig7EngineMatchesSequential asserts it) on the
// campaign engine: Setup once per cell, COW clone per run, one shared pool,
// one profiling pass per cell. The ratio of the two ns/op numbers is the
// engine speedup; the acceptance bar is ≥2×.
func BenchmarkFig7GridSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig7Sequential(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7GridEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignCOWvsFresh isolates the world-lifecycle cost on one cell
// with a heavyweight Setup (MT4's preamble runs the first three Montage
// stages): the same campaign with per-run COW clones vs per-run rebuilds.
func BenchmarkCampaignCOWvsFresh(b *testing.B) {
	for _, fresh := range []bool{false, true} {
		fresh := fresh
		b.Run(map[bool]string{false: "cow", true: "fresh"}[fresh], func(b *testing.B) {
			w := cachedWorkload(b, "MT4")
			for i := 0; i < b.N; i++ {
				_, err := core.Campaign(core.CampaignConfig{
					Fault:       core.Config{Model: core.BitFlip},
					Runs:        benchOpts().Runs,
					Seed:        2021,
					FreshWorlds: fresh,
				}, w)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate microbenchmarks ------------------------------------------------

// BenchmarkMemFSClone measures the COW snapshot primitive itself on a
// Montage-sized world (raw tiles + three stages of intermediates).
func BenchmarkMemFSClone(b *testing.B) {
	fs := vfs.NewMemFS()
	cfg := montage.DefaultConfig()
	if err := cfg.WriteRawTiles(fs); err != nil {
		b.Fatal(err)
	}
	if err := cfg.RunPipeline(fs, montage.StageProject, montage.StageBg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fs.Clone() == nil {
			b.Fatal("nil clone")
		}
	}
}

// BenchmarkCloneFirstWrite measures the full COW divergence cost: Clone a
// world holding one large file, then perform a single 4 KiB first write on
// the clone. With extent-backed storage the write copies only the touched
// block, so ns/op must stay flat as the file grows — O(bytes written), not
// O(file size).
func BenchmarkCloneFirstWrite(b *testing.B) {
	for _, mib := range []int{1, 16, 64} {
		mib := mib
		b.Run(fmt.Sprintf("%dMiB", mib), func(b *testing.B) {
			fs := vfs.NewMemFS()
			if err := vfs.WriteFile(fs, "/big", make([]byte, mib<<20)); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := fs.Clone()
				f, err := c.Append("/big")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.WriteAt(buf, 0); err != nil {
					b.Fatal(err)
				}
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMountFSClone measures snapshotting a five-mount tiered world.
func BenchmarkMountFSClone(b *testing.B) {
	m := vfs.NewMountFS(vfs.NewMemFS())
	for _, dir := range []string{"/raw", "/proj", "/diff", "/corr", "/mosaic"} {
		if err := m.Mount(dir, vfs.NewMemFS()); err != nil {
			b.Fatal(err)
		}
		if err := vfs.WriteFile(m, dir+"/data", make([]byte, 64<<10)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Clone(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemFSWrite4K(b *testing.B) {
	fs := vfs.NewMemFS()
	f, err := fs.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, int64(i%1024)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInjectorOverheadDisarmed(b *testing.B) {
	fs := core.Disarmed(core.Config{Model: core.BitFlip}.Signature()).Wrap(vfs.NewMemFS())
	f, err := fs.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, int64(i%1024)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHDF5WriteRead(b *testing.B) {
	sim := nyx.DefaultSim()
	sim.N = 24
	sim.NumHalos = 4
	field := sim.Generate()
	b.SetBytes(int64(len(field) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := vfs.NewMemFS()
		fs.MkdirAll("/plt00000")
		if err := nyx.WriteDataset(fs, nyx.OutputPath, field, sim.N); err != nil {
			b.Fatal(err)
		}
		if _, _, err := nyx.ReadDataset(fs, nyx.OutputPath); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloatDecodeGeneric(b *testing.B) {
	spec := hdf5.IEEE754Single() // non-fast-path geometry
	raw := spec.EncodeSlice(make([]float64, 1024))
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.DecodeSlice(raw, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHaloFinder(b *testing.B) {
	sim := nyx.DefaultSim()
	sim.N = 32
	sim.NumHalos = 6
	field := sim.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := nyx.FindHalos(field, sim.N, nyx.DefaultHalo())
		if len(cat.Halos) == 0 {
			b.Fatal("no halos")
		}
	}
}

func BenchmarkQMCLocalEnergySteps(b *testing.B) {
	cfg := qmcpack.DefaultQMC()
	cfg.Walkers = 32
	cfg.VMCEquil = 0
	cfg.VMCSteps = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := qmcpack.RunVMC(cfg, qmcpack.TrialForBench())
		if len(rows) != 8 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkMontagePipeline(b *testing.B) {
	cfg := montage.DefaultConfig()
	cfg.Tiles = 6
	cfg.TileW, cfg.TileH = 48, 48
	cfg.MosaicW, cfg.MosaicH = 110, 110
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := vfs.NewMemFS()
		if err := cfg.WriteRawTiles(fs); err != nil {
			b.Fatal(err)
		}
		if err := cfg.RunPipeline(fs, montage.StageProject, montage.StageAdd); err != nil {
			b.Fatal(err)
		}
	}
}
